"""Composable obfuscation-pass pipeline: the stage API of the TAO flow.

The paper presents TAO as a *sequence of orthogonal techniques* —
constant extraction (§3.3.2), branch masking (§3.3.3), DFG variants
(§3.3.4, Algorithm 1) and this repository's ROM extension — so the
pipeline itself is data here, not control flow baked into
``TaoFlow.obfuscate``:

* a :class:`Stage` is a named pass with a ``phase`` — ``"frontend"``
  stages transform the optimized IR before scheduling, and
  ``"post-schedule"`` stages transform the bound FSMD design — and an
  ``apply(ctx, options)`` that returns a :class:`StageReport`;
* stages self-register through :func:`register_stage`; the four paper
  passes are thin adapters over the existing pass functions
  (:mod:`repro.tao.constants_pass`, :mod:`repro.tao.branch_pass`,
  :mod:`repro.tao.dfg_variants`, :mod:`repro.tao.rom_pass`), and any
  future pass plugs into the same seam;
* a :class:`FlowSpec` declares one pipeline: ordered stage names plus
  per-stage options, dict/JSON round-trippable, fully validated at
  construction (unknown stage, duplicate stage and phase-order
  violations raise ``ValueError`` at parse time, not mid-flow);
* a :class:`FlowContext` is the state the driver threads through the
  stages: module/function, key apportionment, working key and the
  base seed from which every stage derives its *own* random stream
  (:meth:`FlowContext.stage_seed`, SHA-256 over the stage name like
  campaign unit seeds) — inserting or removing a stage never perturbs
  another stage's randomness.

Stage selection drives key apportionment: the flow rewrites the
``ObfuscationParameters`` stage booleans from the resolved spec
(:meth:`FlowSpec.apply_to_parameters`) before calling
:func:`repro.tao.key.apportion_keys`, so a pipeline that omits a pass
allocates no key bits for it and Eq. 1 stays exact.

Telemetry: every executed stage yields a :class:`StageReport` (ops
touched, key bits consumed, wall seconds).  The wall time is
in-memory-only diagnostics — ``StageReport.to_dict`` omits it by
default so the campaign JSON stays deterministic (byte-identical
across serial/parallel and warm/cold runs, the contract
``repro.runtime.results`` documents).

Caching note: the resolved pipeline deliberately does *not* enter the
golden or front-end cache keys.  The front-end cache stores the
pre-obfuscation module (all pipelines of one source share it), and the
golden fingerprint canonicalizes obfuscated constants back to their
plaintext while every other stage mutates the FSMD design, never the
IR — so all pipelines of one benchmark share a single golden run per
workload.  ``tests/test_tao_pipeline.py`` and the CI warm-cache gate
assert that adding a pipeline axis cell causes no extra misses.
"""

from __future__ import annotations

import random
import time
from collections.abc import MutableMapping
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Mapping,
    Optional,
    Protocol,
    Union,
)

from repro.registry import REGISTRY, CapabilityView, UnknownCapabilityError
from repro.tao.branch_pass import mask_branches
from repro.tao.constants_pass import obfuscate_constants
from repro.tao.dfg_variants import obfuscate_dfgs
from repro.tao.key import KeyApportionment, LockingKey, ObfuscationParameters
from repro.tao.rom_pass import obfuscate_roms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hls.design import FsmdDesign
    from repro.ir.function import Function, Module
    from repro.ir.values import ObfuscatedConstant

#: Pipeline phases in execution order.  ``frontend`` stages see the
#: optimized IR before scheduling; ``post-schedule`` stages see the
#: bound FSMD design.  A FlowSpec must list frontend stages first.
FRONTEND = "frontend"
POST_SCHEDULE = "post-schedule"
PHASE_ORDER: tuple[str, ...] = (FRONTEND, POST_SCHEDULE)


def stream_seed(base_seed: int, *scope: object) -> int:
    """An independent seed stream named by ``scope`` (SHA-256 derived).

    The same construction as campaign unit seeds
    (:func:`repro.runtime.campaign.derive_seed`, imported lazily —
    ``runtime.campaign`` sits above the ``tao`` layer, so a module-
    scope import here would arm a future cycle; see the deliberate
    deferral in ``tao.metrics`` for the same reason): streams are a
    pure function of the base seed and their name, so consumers of
    one stream are unaffected by how much randomness any other stream
    drew — the property that makes stage insertion non-perturbing.
    """
    from repro.runtime.campaign import derive_seed

    return derive_seed(base_seed, *scope)


def stream_rng(base_seed: int, *scope: object) -> random.Random:
    """A fresh RNG on the :func:`stream_seed` stream named ``scope``."""
    return random.Random(stream_seed(base_seed, *scope))


# ----------------------------------------------------------------------
# Stage telemetry
# ----------------------------------------------------------------------
@dataclass
class StageReport:
    """Telemetry of one executed stage.

    ``ops_touched`` counts the design objects the stage transformed
    (constants encoded, branches masked, blocks varianted, ROMs
    encrypted); ``key_bits_consumed`` is the working-key width the
    stage's technique claims under Eq. 1.  ``wall_seconds`` is local
    diagnostics only: :meth:`to_dict` omits it unless asked, keeping
    campaign JSON timing-free and byte-deterministic.
    """

    stage: str
    phase: str
    ops_touched: int = 0
    key_bits_consumed: int = 0
    wall_seconds: float = 0.0

    def to_dict(self, include_timing: bool = False) -> dict[str, Any]:
        data: dict[str, Any] = {
            "stage": self.stage,
            "phase": self.phase,
            "ops_touched": self.ops_touched,
            "key_bits_consumed": self.key_bits_consumed,
        }
        if include_timing:
            data["wall_seconds"] = self.wall_seconds
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageReport":
        return cls(
            stage=data["stage"],
            phase=data["phase"],
            ops_touched=int(data.get("ops_touched", 0)),
            key_bits_consumed=int(data.get("key_bits_consumed", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )


# ----------------------------------------------------------------------
# Flow context
# ----------------------------------------------------------------------
@dataclass
class FlowContext:
    """Mutable state the pipeline threads through its stages.

    Frontend stages mutate ``func`` (a private deep copy from the
    front-end cache); the driver then schedules/binds the module and
    publishes the result as ``design`` for post-schedule stages.
    ``base_seed`` feeds :meth:`stage_seed`/:meth:`stage_rng` so each
    stage owns an independent random stream.
    """

    module: "Module"
    func: "Function"
    params: ObfuscationParameters
    apportionment: KeyApportionment
    working_key: int
    locking_key: LockingKey
    base_seed: int
    design: Optional["FsmdDesign"] = None
    obfuscated_constants: list["ObfuscatedConstant"] = field(default_factory=list)

    def stage_seed(self, stage_name: str) -> int:
        """This stage's derived seed (stable, name-scoped stream)."""
        return stream_seed(self.base_seed, "stage", stage_name)

    def stage_rng(self, stage_name: str) -> random.Random:
        """A fresh RNG on this stage's stream."""
        return random.Random(self.stage_seed(stage_name))

    def scheduled_design(self) -> "FsmdDesign":
        """The FSMD design; raises if a post-schedule stage ran early."""
        if self.design is None:
            raise RuntimeError(
                "post-schedule stage ran before scheduling: the design "
                "is not available in the frontend phase"
            )
        return self.design


# ----------------------------------------------------------------------
# Stage protocol + registry
# ----------------------------------------------------------------------
class Stage(Protocol):
    """A named obfuscation pass pluggable into the TAO pipeline."""

    name: str
    phase: str

    def apply(
        self, ctx: FlowContext, options: Mapping[str, Any]
    ) -> StageReport:  # pragma: no cover - protocol signature
        ...


#: A stage body: transforms ``ctx`` and returns
#: ``(ops_touched, key_bits_consumed)``; the wrapper stamps the name,
#: phase and wall time into the StageReport.
StageFn = Callable[[FlowContext, Mapping[str, Any]], tuple[int, int]]


@dataclass(frozen=True)
class FunctionStage:
    """Adapter turning a plain function into a :class:`Stage`."""

    name: str
    phase: str
    fn: StageFn

    def apply(self, ctx: FlowContext, options: Mapping[str, Any]) -> StageReport:
        started = time.perf_counter()
        ops_touched, key_bits = self.fn(ctx, options)
        return StageReport(
            stage=self.name,
            phase=self.phase,
            ops_touched=ops_touched,
            key_bits_consumed=key_bits,
            wall_seconds=time.perf_counter() - started,
        )


#: Live view over the ``"stage"`` kind of the process-wide capability
#: registry — the dict-shaped face existing code (and tests) address.
_REGISTRY: MutableMapping = CapabilityView(REGISTRY, "stage")


def register_stage(name: str, phase: str) -> Callable[[StageFn], StageFn]:
    """Decorator registering a stage body under ``name``/``phase``.

    The decorated function keeps its identity (it stays directly
    callable and testable); the registry holds a :class:`FunctionStage`
    wrapper.  Registering a taken name or an unknown phase raises.
    """
    if phase not in PHASE_ORDER:
        raise ValueError(
            f"unknown stage phase {phase!r}; phases: {', '.join(PHASE_ORDER)}"
        )

    def decorator(fn: StageFn) -> StageFn:
        stage = FunctionStage(name=name, phase=phase, fn=fn)
        REGISTRY.register(
            "stage",
            name,
            stage,
            description=(fn.__doc__ or "").strip().splitlines()[0].strip()
            if fn.__doc__
            else f"{phase} stage",
        )
        return fn

    return decorator


def get_stage(name: str) -> Stage:
    """The registered stage called ``name`` (the error names the options)."""
    return REGISTRY.get("stage", name)


def available_stages() -> tuple[str, ...]:
    """Registered stage names, in registration order."""
    return REGISTRY.names("stage")


# ----------------------------------------------------------------------
# The four TAO passes as registered stages (thin adapters: the pass
# implementations stay in their own modules)
# ----------------------------------------------------------------------
@register_stage("constants", phase=FRONTEND)
def _constants_stage(ctx: FlowContext, options: Mapping[str, Any]) -> tuple[int, int]:
    """Constant extraction (§3.3.2): IR literals become key-decoded."""
    created = obfuscate_constants(ctx.func, ctx.apportionment, ctx.working_key)
    ctx.obfuscated_constants = created
    return len(created), len(created) * ctx.params.constant_width


@register_stage("branches", phase=POST_SCHEDULE)
def _branches_stage(ctx: FlowContext, options: Mapping[str, Any]) -> tuple[int, int]:
    """Branch masking (§3.3.3): one key bit per conditional transition."""
    design = ctx.scheduled_design()
    design.masked_branches = mask_branches(design, ctx.apportionment, ctx.working_key)
    return (
        len(design.masked_branches),
        len(design.masked_branches) * ctx.params.branch_bits,
    )


@register_stage("dfg", phase=POST_SCHEDULE)
def _dfg_stage(ctx: FlowContext, options: Mapping[str, Any]) -> tuple[int, int]:
    """DFG variants (§3.3.4, Algorithm 1) on the stage's own seed stream.

    Option ``diversity`` overrides ``params.variant_diversity`` for
    this pipeline (``"distance"`` or ``"selector"``).
    """
    design = ctx.scheduled_design()
    diversity = options.get("diversity", ctx.params.variant_diversity)
    created = obfuscate_dfgs(
        design,
        ctx.apportionment,
        ctx.working_key,
        ctx.stage_seed("dfg"),
        diversity=diversity,
    )
    key_bits = sum(
        ctx.apportionment.block_slice_of[name][1] for name in created
    )
    return len(created), key_bits


@register_stage("roms", phase=POST_SCHEDULE)
def _roms_stage(ctx: FlowContext, options: Mapping[str, Any]) -> tuple[int, int]:
    """ROM-image encryption (repository extension, see tao.rom_pass)."""
    slices = ctx.apportionment.rom_slice_of
    if not slices:
        return 0, 0
    created = obfuscate_roms(ctx.scheduled_design(), slices, ctx.working_key)
    return len(created), sum(width for _offset, width in slices.values())


# ----------------------------------------------------------------------
# FlowSpec: a declarative, validated pipeline
# ----------------------------------------------------------------------
#: (stage name, ObfuscationParameters boolean) pairs in canonical
#: pipeline order — the bridge between the legacy boolean toggles and
#: stage lists (both directions).
_BOOLEAN_STAGES: tuple[tuple[str, str], ...] = (
    ("constants", "obfuscate_constants"),
    ("branches", "obfuscate_branches"),
    ("dfg", "obfuscate_dfg"),
    ("roms", "obfuscate_roms"),
)

_Options = Union[
    Mapping[str, Mapping[str, Any]],
    tuple[tuple[str, tuple[tuple[str, Any], ...]], ...],
]


@dataclass(frozen=True)
class FlowSpec:
    """One obfuscation pipeline: ordered stage names + per-stage options.

    Fully validated at construction — unknown stages, duplicates,
    phase-order violations (a frontend stage listed after a
    post-schedule stage) and options naming unlisted stages all raise
    ``ValueError`` at parse time.  ``options`` accepts a plain
    ``{stage: {option: value}}`` dict and is normalized to sorted
    tuples, so specs are hashable and dict/JSON round-trips compare
    equal (:meth:`to_dict` / :meth:`from_dict`).
    """

    stages: tuple[str, ...] = ()
    options: _Options = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        raw = self.options
        items = raw.items() if isinstance(raw, Mapping) else raw
        object.__setattr__(
            self,
            "options",
            tuple(
                sorted(
                    (
                        name,
                        tuple(
                            sorted(
                                opts.items()
                                if isinstance(opts, Mapping)
                                else (tuple(item) for item in opts)
                            )
                        ),
                    )
                    for name, opts in items
                )
            ),
        )
        self._validate()

    def _validate(self) -> None:
        seen: set[str] = set()
        highest_phase = -1
        for name in self.stages:
            if name in seen:
                raise ValueError(f"duplicate stage {name!r} in pipeline")
            seen.add(name)
            try:
                stage = get_stage(name)
            except KeyError as exc:
                raise ValueError(exc.args[0]) from None
            phase_index = PHASE_ORDER.index(stage.phase)
            if phase_index < highest_phase:
                raise ValueError(
                    f"stage {name!r} ({stage.phase}) cannot run after a "
                    f"{PHASE_ORDER[highest_phase]} stage: list frontend "
                    "stages before post-schedule stages"
                )
            highest_phase = max(highest_phase, phase_index)
        for name, _opts in self.options:
            if name not in seen:
                raise ValueError(
                    f"options given for stage {name!r} which is not in the "
                    f"pipeline {list(self.stages)}"
                )

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Canonical comma-separated form (what the CLI accepts)."""
        return ",".join(self.stages)

    def options_for(self, stage_name: str) -> dict[str, Any]:
        for name, opts in self.options:
            if name == stage_name:
                return dict(opts)
        return {}

    def resolved_stages(self) -> list[Stage]:
        """Registry lookups for every listed stage, in order."""
        return [get_stage(name) for name in self.stages]

    def apply_to_parameters(
        self, params: ObfuscationParameters
    ) -> ObfuscationParameters:
        """``params`` with the stage booleans rewritten from this spec.

        Key apportionment (Eq. 1) consults the booleans, so the flow
        derives them from the resolved pipeline: stages not listed
        claim no key bits, and the legacy boolean path round-trips to
        identical parameters.
        """
        toggles = {
            attr: name in self.stages for name, attr in _BOOLEAN_STAGES
        }
        return replace(params, **toggles)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "stages": list(self.stages),
            "options": {name: dict(opts) for name, opts in self.options},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSpec":
        return cls(
            stages=tuple(data.get("stages", ())),
            options=dict(data.get("options", {})),
        )

    @classmethod
    def from_parameters(cls, params: ObfuscationParameters) -> "FlowSpec":
        """The pipeline the legacy boolean toggles describe.

        The back-compat bridge: ``obfuscate_constants`` /
        ``obfuscate_branches`` / ``obfuscate_dfg`` / ``obfuscate_roms``
        select their stages in canonical order.  This is a plain
        constructor (no deprecation warning) — the warning belongs to
        the *implicit* path, ``TaoFlow.obfuscate`` falling back to the
        booleans when no pipeline was given.
        """
        return cls(
            stages=tuple(
                name
                for name, attr in _BOOLEAN_STAGES
                if getattr(params, attr)
            )
        )


#: Named pipeline presets (the FlowSpec re-expression of the campaign's
#: ``PRESET_CONFIGS``, plus the ROM-extended full flow).  ``repro
#: campaign --pipeline`` accepts these names or ad-hoc comma-separated
#: stage lists.
PIPELINE_PRESETS: MutableMapping = CapabilityView(REGISTRY, "pipeline-preset")

for _name, _spec, _desc in (
    ("full", FlowSpec(("constants", "branches", "dfg")), "all three paper passes"),
    ("constants", FlowSpec(("constants",)), "constant extraction only"),
    ("branches", FlowSpec(("branches",)), "branch masking only"),
    ("dfg", FlowSpec(("dfg",)), "DFG variants only"),
    (
        "full-rom",
        FlowSpec(("constants", "branches", "dfg", "roms")),
        "paper passes plus ROM-image encryption",
    ),
):
    REGISTRY.register("pipeline-preset", _name, _spec, description=_desc)
del _name, _spec, _desc


def resolve_pipeline(value: Union[FlowSpec, str]) -> FlowSpec:
    """A :class:`FlowSpec` from a preset name or comma-separated stages.

    ``"full"`` → the preset; ``"constants,branches"`` → an ad-hoc
    two-stage spec.  Plugin-registered presets and stages resolve too.
    Validation errors (unknown stage, phase order, duplicates, empty
    list) surface as ``ValueError`` naming the available presets and
    stages.
    """
    if isinstance(value, FlowSpec):
        return value
    REGISTRY.load_plugins()
    if REGISTRY.has("pipeline-preset", value):
        return REGISTRY.get("pipeline-preset", value)
    names = tuple(part.strip() for part in value.split(",") if part.strip())
    if not names:
        raise UnknownCapabilityError(
            f"empty pipeline {value!r}; presets: "
            f"{', '.join(PIPELINE_PRESETS)}; stages: "
            f"{', '.join(available_stages())}"
        )
    return FlowSpec(stages=names)

"""Algebraic simplification and strength reduction.

Rewrites the identities every HLS front-end applies before scheduling:

* additive/multiplicative identities: ``x+0``, ``x-0``, ``x*1``,
  ``x/1``, ``x|0``, ``x^0``, ``x&~0``, ``x<<0``, ``x>>0`` become moves;
* annihilators: ``x*0``, ``x&0``, ``x%1`` become constant 0;
* self-cancellation: ``x-x``, ``x^x`` become 0; ``x&x``, ``x|x``
  become moves;
* strength reduction: ``x * 2^k`` becomes ``x << k``, ``x / 2^k`` (for
  unsigned x) becomes ``x >> k``, ``x % 2^k`` (unsigned) becomes
  ``x & (2^k - 1)``.

This pass matters to the TAO reproduction: §3.3.2 argues constant
obfuscation *blocks* these very rewrites in the fabricated design
(the optimizer can no longer see that a multiplier operand is a power
of two) — our flow applies them before obfuscation, as Bambu does, and
tests assert obfuscated constants are never simplified away.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import IntType
from repro.ir.values import Constant, ObfuscatedConstant, Value


def _plain_constant(value: Value) -> Optional[Constant]:
    """The operand as a literal constant; obfuscated constants opaque."""
    if isinstance(value, ObfuscatedConstant):
        return None  # key-dependent: must not be folded
    if isinstance(value, Constant):
        return value
    return None


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def simplify_algebraic(func: Function, module: Module) -> bool:
    """Apply algebraic identities in place; returns True on any rewrite."""
    changed = False
    for block in func.blocks.values():
        for inst in block.instructions:
            if _simplify_instruction(inst):
                changed = True
    return changed


def _simplify_instruction(inst: Instruction) -> bool:
    if not inst.is_datapath_op or inst.result is None:
        return False
    result_type = inst.result.type
    if not isinstance(result_type, IntType):
        return False
    if len(inst.operands) != 2:
        return False
    lhs, rhs = inst.operands
    lhs_const = _plain_constant(lhs)
    rhs_const = _plain_constant(rhs)
    op = inst.opcode

    def to_mov(source: Value) -> bool:
        inst.opcode = Opcode.MOV
        inst.operands = [source]
        return True

    def to_zero() -> bool:
        return to_mov(Constant(0, result_type))

    # x + 0, 0 + x, x - 0, x | 0, x ^ 0, x << 0, x >> 0
    if rhs_const is not None and rhs_const.value == 0:
        if op in (Opcode.ADD, Opcode.SUB, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR):
            return to_mov(lhs)
        if op is Opcode.AND or op is Opcode.MUL:
            return to_zero()
    if lhs_const is not None and lhs_const.value == 0:
        if op in (Opcode.ADD, Opcode.OR, Opcode.XOR):
            return to_mov(rhs)
        if op in (Opcode.MUL, Opcode.AND, Opcode.DIV, Opcode.REM, Opcode.SHL, Opcode.SHR):
            return to_zero()

    # x * 1, 1 * x, x / 1
    if rhs_const is not None and rhs_const.value == 1:
        if op in (Opcode.MUL, Opcode.DIV):
            return to_mov(lhs)
        if op is Opcode.REM:
            return to_zero()
    if lhs_const is not None and lhs_const.value == 1 and op is Opcode.MUL:
        return to_mov(rhs)

    # x & ~0 (all-ones mask of the operand width)
    if rhs_const is not None and op is Opcode.AND:
        assert isinstance(rhs_const.type, IntType)
        all_ones = rhs_const.type.wrap(-1)
        if rhs_const.value == all_ones and rhs_const.type.width >= result_type.width:
            return to_mov(lhs)

    # self-cancellation / idempotence
    if lhs is rhs and lhs_const is None:
        if op in (Opcode.SUB, Opcode.XOR):
            return to_zero()
        if op in (Opcode.AND, Opcode.OR):
            return to_mov(lhs)

    # strength reduction on plain (non-obfuscated) power-of-two constants
    if rhs_const is not None and _is_power_of_two(rhs_const.value):
        shift = rhs_const.value.bit_length() - 1
        if shift > 0:
            if op is Opcode.MUL:
                inst.opcode = Opcode.SHL
                inst.operands = [lhs, Constant(shift, IntType(32, signed=True))]
                return True
            unsigned_lhs = isinstance(lhs.type, IntType) and not lhs.type.signed
            if op is Opcode.DIV and unsigned_lhs:
                inst.opcode = Opcode.SHR
                inst.operands = [lhs, Constant(shift, IntType(32, signed=True))]
                return True
            if op is Opcode.REM and unsigned_lhs:
                inst.opcode = Opcode.AND
                mask = rhs_const.value - 1
                inst.operands = [lhs, Constant(mask, lhs.type)]
                return True
    return False

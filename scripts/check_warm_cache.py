#!/usr/bin/env python3
"""CI gate: a warm-cache campaign must be free work, not different work.

Given the JSON documents of a cold and a warm run of the same campaign
spec (both produced with ``--cache-stats`` against the same
``--cache-dir``), assert the persistent-cache contract:

* the warm run reports **zero** golden-interpreter misses (every
  golden lookup was served from a cache tier) and zero front-end
  compilation misses;
* outside the ``cache`` telemetry block, the two documents are
  byte-identical — the disk backend may only change *where* results
  come from, never *what* they are.

Usage: ``check_warm_cache.py cold.json warm.json``; exits non-zero
with a diagnostic per violated property.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def result_fields(doc: dict) -> str:
    """Canonical serialization of everything except cache telemetry."""
    stripped = {k: v for k, v in doc.items() if k != "cache"}
    return json.dumps(stripped, indent=2, sort_keys=True)


def compare(cold: dict, warm: dict) -> list[str]:
    """Contract violations between a cold and a warm campaign document."""
    problems: list[str] = []
    cache = warm.get("cache")
    if not cache:
        problems.append("warm run has no cache telemetry (run with --cache-stats)")
        return problems
    backend = cache.get("backend") or {}
    if backend.get("kind") != "disk":
        problems.append(f"warm run used no disk backend: {backend!r}")
    for name in ("golden", "frontend"):
        counters = cache.get(name, {})
        misses = counters.get("misses")
        if misses != 0:
            problems.append(
                f"warm run reports {misses} {name} miss(es) "
                f"(expected 0): {counters!r}"
            )
    if result_fields(cold) != result_fields(warm):
        problems.append(
            "cold and warm result fields differ (the cache must not "
            "change campaign results)"
        )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    cold = json.loads(Path(argv[1]).read_text())
    warm = json.loads(Path(argv[2]).read_text())
    problems = compare(cold, warm)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    golden = warm["cache"]["golden"]
    print(
        f"warm-cache contract holds: golden {golden['hits']} L1 + "
        f"{golden['l2_hits']} disk hits, 0 misses; result fields "
        "byte-identical to the cold run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

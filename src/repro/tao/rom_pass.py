"""ROM-content obfuscation (repository extension, beyond the paper).

The paper's constant pass (§3.3.2) covers scalar literals; constants
kept in on-chip ROMs (filter coefficient tables, quantizer step
tables) remain readable in the fabricated bit image.  This extension
closes that gap: each read-only memory's image is stored XOR-encrypted
with a dedicated working-key slice, and a key-width XOR bank on the
read port decrypts elements on the fly.

Hardware cost: one XOR bank per ROM (element width) plus C key bits
per ROM in the working key — the same shape as a scalar constant.
Limitation (documented): all elements of one ROM share a mask slice,
so XOR differences between elements survive in the image; an attacker
learns element deltas but not values.  A per-element keystream (e.g.
AES-CTR over the address) would remove that leak at higher cost.

Enabled with ``ObfuscationParameters(obfuscate_roms=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.design import FsmdDesign
from repro.ir.function import Function
from repro.ir.instructions import Opcode
from repro.ir.types import IntType


@dataclass
class RomObfuscation:
    """Key binding and encrypted image of one obfuscated ROM."""

    array_name: str
    key_offset: int
    key_width: int
    encrypted_image: list[int] = field(default_factory=list)

    def mask_for(self, element_type: IntType, working_key: int) -> int:
        """The element-width mask derived from this ROM's key slice."""
        key_slice = (working_key >> self.key_offset) & ((1 << self.key_width) - 1)
        return key_slice & ((1 << element_type.width) - 1)

    def decode(self, raw: int, element_type: IntType, working_key: int) -> int:
        """Decrypt one stored element under ``working_key``."""
        bits = raw & ((1 << element_type.width) - 1)
        value = bits ^ self.mask_for(element_type, working_key)
        return element_type.wrap(value)


def eligible_roms(func: Function) -> list[str]:
    """Local arrays with initializers that are never written: true ROMs."""
    written = {
        inst.array.name
        for inst in func.instructions()
        if inst.opcode is Opcode.STORE and inst.array is not None
    }
    return [
        array.name
        for array in func.arrays.values()
        if not array.is_param
        and array.initializer is not None
        and array.name not in written
    ]


def obfuscate_roms(
    design: FsmdDesign,
    rom_slices: dict[str, tuple[int, int]],
    working_key: int,
) -> dict[str, RomObfuscation]:
    """Encrypt each apportioned ROM's image against the working key.

    The IR's ``initializer`` is left untouched (it is the golden,
    design-time plaintext); the encrypted image lives in the design
    metadata and is what the RTL emitter and FSMD simulator use.
    """
    created: dict[str, RomObfuscation] = {}
    for array_name, (offset, width) in rom_slices.items():
        array = design.func.arrays[array_name]
        assert array.initializer is not None
        rom = RomObfuscation(
            array_name=array_name, key_offset=offset, key_width=width
        )
        mask = rom.mask_for(array.element_type, working_key)
        element_mask = (1 << array.element_type.width) - 1
        rom.encrypted_image = [
            ((value & element_mask) ^ mask) for value in array.initializer
        ]
        # Lossless under the correct key, by construction.
        for raw, original in zip(rom.encrypted_image, array.initializer):
            decoded = rom.decode(raw, array.element_type, working_key)
            if decoded != array.element_type.wrap(original):  # pragma: no cover
                raise AssertionError(f"lossy ROM encode for {array_name}")
        created[array_name] = rom
    design.obfuscated_roms.update(created)
    return created

"""Structural timing model: critical-path and achievable-frequency
estimation.

Each clock period must cover the worst register-to-register path:

    clk-to-Q/setup + FU-input mux + (constant-unmask XOR) + FU logic
    + register-write mux

plus, on controller paths, next-state logic and the branch-mask XOR.
The paper reports ~8 % average frequency loss from DFG variants (more
mux levels), <1 % from branch masking (one XOR in next-state logic)
and ~4 % from constant obfuscation (wider muxes + unmask XOR); this
model reproduces those effects structurally (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hls.design import FsmdDesign
from repro.hls.resources import (
    FSM_LOGIC_NS,
    REGISTER_OVERHEAD_NS,
    XOR_DELAY_NS,
    fu_kind_for,
    memory_access_delay,
    mux_delay,
    opcode_delay,
)
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Constant, ObfuscatedConstant


@dataclass
class TimingReport:
    """Critical-path summary of one design."""

    critical_path_ns: float
    frequency_mhz: float
    path_description: str
    per_state_worst: dict[str, float] = field(default_factory=dict)

    def frequency_ratio(self, baseline: "TimingReport") -> float:
        """Achievable frequency as a fraction of the baseline's."""
        if baseline.frequency_mhz <= 0:
            raise ValueError("baseline frequency must be positive")
        return self.frequency_mhz / baseline.frequency_mhz


def estimate_timing(design: FsmdDesign) -> TimingReport:
    """Estimate the worst register-to-register path over all states."""
    fu_mux_sources = design.fu_input_sources()
    register_mux_sources = design.register_input_sources()

    fu_input_count: dict[str, int] = {}
    for (fu_name, _port), sources in fu_mux_sources.items():
        fu_input_count[fu_name] = max(
            fu_input_count.get(fu_name, 1), len(sources)
        )
    register_input_count = {
        name: len(sources) for name, sources in register_mux_sources.items()
    }

    worst = REGISTER_OVERHEAD_NS + FSM_LOGIC_NS  # idle controller floor
    worst_desc = "controller"
    per_state: dict[str, float] = {}

    fu_of = design.binding.fu_of
    register_of = design.binding.register_of
    merged_optypes = design.merged_fu_optypes()

    for block_name, block_schedule in design.schedule.blocks.items():
        variants = design.block_variants.get(block_name)
        op_lists: list[list] = [list(block_schedule.block.instructions)]
        if variants is not None:
            op_lists.extend(variants.variants.values())
        for ops in op_lists:
            for op in ops:
                path, description = _op_path_delay(
                    design,
                    op,
                    fu_input_count,
                    register_input_count,
                    merged_optypes,
                )
                state_key = f"{block_name}"
                per_state[state_key] = max(per_state.get(state_key, 0.0), path)
                if path > worst:
                    worst = path
                    worst_desc = description

    # Controller decision path: state reg -> next-state logic (+ mask XOR).
    controller_path = REGISTER_OVERHEAD_NS + FSM_LOGIC_NS
    if design.masked_branches:
        controller_path += XOR_DELAY_NS
    if controller_path > worst:
        worst = controller_path
        worst_desc = "controller next-state logic"

    frequency = 1000.0 / worst  # ns -> MHz
    return TimingReport(
        critical_path_ns=worst,
        frequency_mhz=frequency,
        path_description=worst_desc,
        per_state_worst=per_state,
    )


def _op_path_delay(
    design: FsmdDesign,
    op,
    fu_input_count: dict[str, int],
    register_input_count: dict[str, int],
    merged_optypes,
) -> tuple[float, str]:
    """Register-to-register delay of one scheduled operation."""
    from repro.hls.design import VariantOp

    if isinstance(op, Instruction):
        opcode = op.opcode
        result = op.result
        operands = op.operands
        bound_inst = op
    else:
        assert isinstance(op, VariantOp)
        opcode = op.opcode
        result = op.result
        operands = op.operands
        baseline = design.func.blocks[
            next(
                name
                for name, variant in design.block_variants.items()
                if any(op in ops for ops in variant.variants.values())
            )
        ].instructions
        bound_inst = baseline[op.slot] if op.slot < len(baseline) else None

    if opcode in (Opcode.JUMP, Opcode.RET):
        return REGISTER_OVERHEAD_NS + FSM_LOGIC_NS, "control"
    path = REGISTER_OVERHEAD_NS

    # Source-side mux + constant unmask XOR.
    fu = design.binding.fu_for(bound_inst) if bound_inst is not None else None
    if fu is not None:
        path += mux_delay(fu_input_count.get(fu.name, 1))
    if any(isinstance(v, ObfuscatedConstant) for v in operands):
        path += XOR_DELAY_NS

    # FU logic (widest variant demand governs the merged unit).
    width = 32
    if result is not None and hasattr(result.type, "width"):
        width = result.type.width
    if opcode in (Opcode.LOAD, Opcode.STORE):
        path += memory_access_delay()
        description = f"memory {opcode}"
    else:
        path += opcode_delay(opcode, width)
        description = f"{opcode} ({width}b)"
        if fu is not None:
            extra_ops = merged_optypes.get(fu.name, set())
            if len({fu_kind_for(o) for o in extra_ops} - {None}) > 1:
                path += 0.05  # function-select steering in merged FU
    # Destination register write mux.
    if result is not None:
        register = design.binding.register_of.get(result)
        if register is not None:
            path += mux_delay(register_input_count.get(register.name, 1))
    if opcode is Opcode.BRANCH:
        path += FSM_LOGIC_NS
    return path, description

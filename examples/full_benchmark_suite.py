"""Regenerate the paper's evaluation on the five-benchmark suite.

Prints Table 1, Figure 6, the frequency impact (P2), the
key-management comparison (K1) and a compact key-validation campaign
(V1/V2) — ours next to the paper's numbers.  This is the long-form
version of what `pytest benchmarks/ --benchmark-only -s` runs.

Run:  python examples/full_benchmark_suite.py            (quick, ~2 min)
      REPRO_FULL_VALIDATION=1 python examples/...        (100 keys/bench)
"""

import os
import time

from repro.evaluation import (
    format_figure6,
    format_frequency_rows,
    format_keymgmt,
    format_table1,
    format_validation,
    generate_figure6,
    generate_keymgmt,
    generate_table1,
    measure_frequency,
    measure_latency,
    validate_suite,
)


def main() -> None:
    t0 = time.time()
    full = bool(os.environ.get("REPRO_FULL_VALIDATION"))

    print("=" * 72)
    print("TAO (DAC 2018) — reproduction of the experimental evaluation")
    print("=" * 72)

    print("\n[T1] " + format_table1(generate_table1()))

    print("\n[F6] " + format_figure6(generate_figure6()))

    print("\n[P1] Latency with the correct key (paper: zero overhead)")
    for name in ("gsm", "adpcm", "sobel", "backprop", "viterbi"):
        row = measure_latency(name)
        print(
            f"  {name:<10} baseline {row.baseline_cycles:>6} cycles, "
            f"obfuscated {row.obfuscated_cycles:>6} cycles "
            f"({100 * row.overhead:+.2f}%)"
        )

    print("\n[P2] " + format_frequency_rows(
        [measure_frequency(n) for n in ("gsm", "adpcm", "sobel", "backprop", "viterbi")]
    ))

    print("\n[K1] " + format_keymgmt(generate_keymgmt()))

    n_keys = 100 if full else 10
    print(f"\n[V1/V2] Key validation with {n_keys} keys per benchmark"
          + (" (set REPRO_FULL_VALIDATION=1 for the paper's 100)" if not full else ""))
    summary = validate_suite(n_keys=n_keys, n_workloads=1)
    print(format_validation(summary))

    print(f"\nDone in {time.time() - t0:.0f}s.")


if __name__ == "__main__":
    main()

"""Unit tests for the three TAO obfuscation passes: constants, branch
masking and DFG variants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_c
from repro.opt import optimize_module
from repro.hls import synthesize_function
from repro.ir.values import Constant, ObfuscatedConstant
from repro.sim import Testbench, run_testbench, simulate
from repro.tao.branch_pass import mask_branches
from repro.tao.constants_pass import obfuscate_constants
from repro.tao.dfg_variants import (
    create_dfg_variants,
    hamming_distance,
    obfuscate_dfgs,
    variant_divergence,
)
from repro.tao.key import ObfuscationParameters, apportion_keys


SOURCE = """
int f(int a, int data[4], int out[4]) {
  int acc = 100;
  for (int i = 0; i < 4; i++) {
    int v = data[i] * 7 + a;
    if (v > 50) acc += v;
    else acc -= v * 3;
    out[i] = acc;
  }
  return acc;
}
"""


def prepared(params=None):
    module = compile_c(SOURCE)
    optimize_module(module)
    func = module.function("f")
    apportionment = apportion_keys(func, params or ObfuscationParameters())
    return module, func, apportionment


class TestHammingDistance:
    def test_examples(self):
        assert hamming_distance(0b1010, 0b1010) == 0
        assert hamming_distance(0b1010, 0b0101) == 4
        assert hamming_distance(0, 0b1111) == 4

    @given(st.integers(min_value=0, max_value=2**16), st.integers(min_value=0, max_value=2**16))
    def test_property_symmetric(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)


class TestConstantsPass:
    def test_constants_replaced(self):
        module, func, apportionment = prepared()
        working_key = random.Random(0).getrandbits(apportionment.working_key_bits)
        created = obfuscate_constants(func, apportionment, working_key)
        assert len(created) == apportionment.num_constants
        remaining = [
            op
            for inst in func.instructions()
            if not inst.is_terminator
            for op in inst.operands
            if isinstance(op, Constant) and not isinstance(op, ObfuscatedConstant)
            and abs(op.value) >= 2
        ]
        assert not remaining

    def test_correct_key_decodes_originals(self):
        module, func, apportionment = prepared()
        working_key = random.Random(1).getrandbits(apportionment.working_key_bits)
        created = obfuscate_constants(func, apportionment, working_key)
        for constant in created:
            assert constant.decode(working_key) == constant.original.value

    def test_semantics_preserved_in_golden_model(self):
        module, func, apportionment = prepared()
        from repro.sim.interpreter import run_function

        before = run_function(module, "f", [5], {"data": [10, 20, 30, 40]})
        working_key = random.Random(2).getrandbits(apportionment.working_key_bits)
        obfuscate_constants(func, apportionment, working_key)
        after = run_function(module, "f", [5], {"data": [10, 20, 30, 40]})
        assert before.return_value == after.return_value
        assert before.arrays["out"] == after.arrays["out"]

    def test_stored_values_differ_from_plaintext(self):
        # With a random 32-bit slice, stored pattern != plaintext w.h.p.
        module, func, apportionment = prepared()
        working_key = random.Random(3).getrandbits(apportionment.working_key_bits)
        created = obfuscate_constants(func, apportionment, working_key)
        differing = sum(
            1
            for c in created
            if c.stored_value != (c.original.value & 0xFFFFFFFF)
        )
        assert differing >= len(created) * 3 // 4


class TestBranchPass:
    def test_all_branches_masked(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(4).getrandbits(apportionment.working_key_bits)
        masked = mask_branches(design, apportionment, working_key)
        assert len(masked) == apportionment.num_branches
        for __, transition in design.controller.conditional_transitions():
            assert transition.key_bit is not None

    def test_swap_matches_key_bit(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(5).getrandbits(apportionment.working_key_bits)
        mask_branches(design, apportionment, working_key)
        for __, transition in design.controller.conditional_transitions():
            bit = (working_key >> transition.key_bit) & 1
            assert transition.swapped == (bit == 1)

    def test_behaviour_preserved_under_correct_key(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(6).getrandbits(apportionment.working_key_bits)
        mask_branches(design, apportionment, working_key)
        bench = Testbench(args=[5], arrays={"data": [10, 20, 30, 40]})
        outcome = run_testbench(design, bench, working_key=working_key)
        assert outcome.matches

    def test_flipped_key_bit_inverts_branch(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(7).getrandbits(apportionment.working_key_bits)
        mask_branches(design, apportionment, working_key)
        # Flip exactly one branch bit: control flow must change behaviour.
        bit = next(iter(apportionment.branch_bit_of.values()))
        wrong_key = working_key ^ (1 << bit)
        bench = Testbench(args=[5], arrays={"data": [10, 20, 30, 40]})
        good = run_testbench(design, bench, working_key=working_key)
        bad = run_testbench(
            design, bench, working_key=wrong_key, max_cycles=8 * good.cycles
        )
        assert good.matches and not bad.matches


class TestDfgVariants:
    def test_correct_selector_is_baseline(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(8).getrandbits(apportionment.working_key_bits)
        created = obfuscate_dfgs(design, apportionment, working_key, seed=1)
        for variants in created.values():
            baseline_ops = variants.variants[variants.correct_value]
            block = design.func.blocks[variants.block_name]
            assert len(baseline_ops) == len(block.instructions)
            for op, inst in zip(baseline_ops, block.instructions):
                assert op.opcode is inst.opcode
                assert op.operands == list(inst.operands)

    def test_variant_count(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(9).getrandbits(apportionment.working_key_bits)
        created = obfuscate_dfgs(design, apportionment, working_key, seed=1)
        for variants in created.values():
            assert len(variants.variants) == 16  # B_i = 4

    def test_variants_causally_valid(self):
        """Every variant operand is a constant, block input, or the
        result of an op in a strictly earlier cstep."""
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(10).getrandbits(apportionment.working_key_bits)
        created = obfuscate_dfgs(design, apportionment, working_key, seed=1)
        for variants in created.values():
            for ops in variants.variants.values():
                defined_at = {}
                for op in ops:
                    if op.result is not None:
                        defined_at.setdefault(op.result, op.cstep)
                for op in ops:
                    for operand in op.operands:
                        if operand in defined_at and defined_at[operand] is not None:
                            if defined_at[operand] >= op.cstep and operand is not op.result:
                                # only flag operands produced in this block
                                produced = [
                                    o for o in ops if o.result is operand
                                ]
                                if produced and min(
                                    o.cstep for o in produced
                                ) >= op.cstep:
                                    # allowed only if operand is live-in
                                    # (i.e. also defined before entry) —
                                    # conservative check: it must not be
                                    # *first* defined later in the block.
                                    first_def = min(o.cstep for o in produced)
                                    assert first_def < op.cstep or any(
                                        inst.result is operand
                                        for name, block in design.func.blocks.items()
                                        if name != variants.block_name
                                        for inst in block.instructions
                                    )

    def test_wrong_selector_produces_divergence(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(11).getrandbits(apportionment.working_key_bits)
        created = obfuscate_dfgs(design, apportionment, working_key, seed=1)
        total_divergence = sum(variant_divergence(v) for v in created.values())
        assert total_divergence > 0

    def test_behaviour_preserved_under_correct_key(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(12).getrandbits(apportionment.working_key_bits)
        obfuscate_dfgs(design, apportionment, working_key, seed=1)
        bench = Testbench(args=[5], arrays={"data": [10, 20, 30, 40]})
        assert run_testbench(design, bench, working_key=working_key).matches

    def test_selector_diversity_mode_distinct_structures(self):
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(13).getrandbits(apportionment.working_key_bits)
        created = obfuscate_dfgs(
            design, apportionment, working_key, seed=1, diversity="selector"
        )
        assert any(variant_divergence(v) > 0 for v in created.values())

    def test_latency_unchanged_for_any_selector(self):
        """Variants reuse the baseline schedule: same csteps per block."""
        module, func, apportionment = prepared()
        design = synthesize_function(module, "f")
        working_key = random.Random(14).getrandbits(apportionment.working_key_bits)
        created = obfuscate_dfgs(design, apportionment, working_key, seed=1)
        for variants in created.values():
            block_schedule = design.schedule.blocks[variants.block_name]
            for ops in variants.variants.values():
                assert all(0 <= op.cstep < block_schedule.n_steps for op in ops)

"""Campaign-execution runtime: caches, process fan-out and the unified
results schema.

* :mod:`repro.runtime.cache` — process-wide memoization of golden
  interpreter runs and front-end compilations;
* :mod:`repro.runtime.campaign` — the parallel multi-axis campaign
  engine (``CampaignSpec`` / ``run_campaign`` / ``parallel_map``;
  axes: benchmark × config × key scheme × resource budget);
* :mod:`repro.runtime.results` — the ``repro.campaign/2`` JSON schema
  (upgrades ``/1`` documents on load).

Only the cache layer is imported eagerly; campaign and results symbols
are re-exported lazily because they sit above the ``tao`` layer in the
import graph.
"""

from __future__ import annotations

from repro.runtime.cache import (
    FRONTEND_CACHE,
    GOLDEN_CACHE,
    CacheStats,
    FrontEndCache,
    GoldenCache,
    absorb_stats,
    cache_stats,
    golden_fingerprint,
    reset_caches,
    stats_delta,
)

_LAZY = {
    "CampaignSpec": "repro.runtime.campaign",
    "KEY_SCHEMES": "repro.runtime.campaign",
    "PRESET_BUDGETS": "repro.runtime.campaign",
    "PRESET_CONFIGS": "repro.runtime.campaign",
    "budget_constraints": "repro.runtime.campaign",
    "derive_seed": "repro.runtime.campaign",
    "parallel_map": "repro.runtime.campaign",
    "resolve_jobs": "repro.runtime.campaign",
    "run_campaign": "repro.runtime.campaign",
    "AXIS_LABELS": "repro.runtime.results",
    "CampaignResult": "repro.runtime.results",
    "CampaignUnit": "repro.runtime.results",
    "report_from_dict": "repro.runtime.results",
    "report_to_dict": "repro.runtime.results",
}

__all__ = [
    "CacheStats",
    "FrontEndCache",
    "FRONTEND_CACHE",
    "GoldenCache",
    "GOLDEN_CACHE",
    "absorb_stats",
    "cache_stats",
    "golden_fingerprint",
    "reset_caches",
    "stats_delta",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

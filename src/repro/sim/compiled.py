"""Compiled FSMD execution engine: lower a design once, run many keys.

The reference interpreter (:class:`repro.sim.fsmd_sim.FsmdSimulator`)
re-resolves everything per cycle: ``isinstance`` dispatch on operand
kinds, ``register_of`` dictionary lookups, cstep-filtering of each
state's operation list and per-cycle variant selection.  A §4.3
validation campaign pays that cost once per cycle per key — thousands
of times over for work whose answer never changes.

:class:`CompiledDesign` lowers a bound :class:`~repro.hls.design.
FsmdDesign` **once** into a flat execution plan (the design analysis —
slot assignment, wrap elision, state indexing, transitions, variant
tables — lives in the shared :class:`repro.sim.layout.DesignLayout`,
which the codegen tier consumes too):

* registers become a ``list[int]`` with slot indices precomputed per
  value, and memories a ``list[list[int]]`` with slot indices
  precomputed per array;
* each state's operations are pre-filtered by cstep and compiled into
  straight-line step closures whose operand readers (constant /
  obfuscated-constant decode / register slot) and opcode arithmetic
  are resolved at compile time — no per-cycle dispatch;
* controller transitions are pre-resolved into ``(condition reader,
  key-bit cell, true index, false index)`` records;
* per-block DFG variant tables are compiled for every selector value
  up front, so selecting a variant under a key is a dict hit.

Key-dependent pieces — obfuscated-constant decodes, ROM decode masks,
variant selections and branch key bits — live in small mutable cells
that :meth:`CompiledDesign.bind_key` fills per working key, so one
compilation serves every key of a campaign.

This is the middle tier of the three-tier engine architecture:
``interp`` (the reference oracle) < ``compiled`` (this module: one
closure call per op per cycle) < ``codegen``
(:mod:`repro.sim.codegen`: one exec()-generated straight-line step
function per state, lane-vectorized across a whole key batch).

Determinism contract: for any design, arguments, arrays, key and cycle
budget, every engine's :class:`~repro.sim.fsmd_sim.SimulationResult`
is **field-identical** to the interpreter's (return value, arrays,
cycle count, completed flag and — when tracing — the state trace).
``tests/test_sim_compiled.py`` asserts this differentially over every
benchmark, preset pipeline and key class; the interpreter remains the
oracle.

Engine seam: :func:`resolve_engine` picks the engine for
``simulate``/``run_testbench`` — an explicit ``engine`` argument wins,
then the ``REPRO_SIM_ENGINE`` environment variable, then the default
``"compiled"``.  :func:`compiled_for` memoizes compilations per design
object (guarded by a cheap obfuscation-metadata fingerprint, so
re-obfuscating a design in place recompiles rather than running stale
code).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.hls.design import FsmdDesign, VariantOp
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import IntType
from repro.ir.values import Constant, ObfuscatedConstant, Value
from repro.registry import REGISTRY
from repro.sim.fsmd_sim import (
    FsmdSimulator,
    SimulationError,
    SimulationResult,
    zero_size_memory_error,
)
from repro.sim.layout import DesignLayout, PlanCache
from repro.sim.layout import COND as _COND
from repro.sim.layout import design_fingerprint as _design_fingerprint  # noqa: F401 (re-export for back-compat)
from repro.sim.layout import wrap_fn as _wrap_fn

#: Environment variable selecting the default simulation engine.
ENGINE_ENV = "REPRO_SIM_ENGINE"
DEFAULT_ENGINE = "compiled"


@dataclass(frozen=True)
class EngineDriver:
    """One simulation engine as a registered capability.

    ``run`` executes a single key trial with the
    ``(design, args, arrays, working_key, max_cycles)`` signature of
    :func:`repro.sim.fsmd_sim.simulate`; ``run_batch`` (optional)
    sweeps one workload across many keys at once — engines without a
    native batch path are looped scalar by ``simulate_batch``.  Every
    engine must return :class:`SimulationResult`\\ s field-identical
    to the ``interp`` reference oracle.
    """

    name: str
    description: str
    run: Callable[..., SimulationResult]
    run_batch: Optional[Callable[..., list]] = None


def _compiled_run(design, args, arrays, working_key, max_cycles):
    return compiled_for(design).run(
        args, arrays=arrays, working_key=working_key, max_cycles=max_cycles
    )


def _interp_run(design, args, arrays, working_key, max_cycles):
    return FsmdSimulator(design, max_cycles=max_cycles).run(args, arrays, working_key)


def _codegen_run(design, args, arrays, working_key, max_cycles):
    from repro.sim.codegen import codegen_for

    return codegen_for(design).run(
        args, arrays=arrays, working_key=working_key, max_cycles=max_cycles
    )


def _codegen_run_batch(design, args, arrays, working_keys, max_cycles):
    from repro.sim.codegen import codegen_for

    return codegen_for(design).run_batch(
        args, arrays=arrays, working_keys=working_keys, max_cycles=max_cycles
    )


for _driver in (
    EngineDriver(
        name="compiled",
        description="closure-compiled plan, lowered once per design (default)",
        run=_compiled_run,
    ),
    EngineDriver(
        name="interp",
        description="reference interpreter: the differential oracle",
        run=_interp_run,
    ),
    EngineDriver(
        name="codegen",
        description="exec()-generated source, lane-vectorized across key batches",
        run=_codegen_run,
        run_batch=_codegen_run_batch,
    ),
):
    REGISTRY.register(
        "engine", _driver.name, _driver, description=_driver.description
    )
del _driver

#: Known engines, in registration order (fastest tier last): the
#: closure-compiled plan (the default), the reference interpreter (the
#: differential oracle), and the exec()-generated, key-batched codegen
#: tier.  Snapshot of the builtin registrations; plugin engines appear
#: through :func:`engine_driver` / ``repro list``, not this tuple.
ENGINES = tuple(REGISTRY.names("engine"))


def engine_driver(name: str) -> EngineDriver:
    """The registered :class:`EngineDriver` called ``name`` (plugins
    loaded first), with the uniform unknown-capability error."""
    REGISTRY.load_plugins()
    return REGISTRY.get("engine", name)


def resolve_engine(engine: Optional[str] = None) -> str:
    """The engine to run: explicit choice > ``$REPRO_SIM_ENGINE`` > default."""
    if engine:
        choice, source = engine, "engine argument"
    elif os.environ.get(ENGINE_ENV):
        choice, source = os.environ[ENGINE_ENV], f"${ENGINE_ENV}"
    else:
        choice, source = DEFAULT_ENGINE, "default"
    REGISTRY.load_plugins()
    REGISTRY.entry("engine", choice, context=f"(from {source})")
    return choice


_Reader = Callable[[list], int]


def _arith_fn(
    opcode: Opcode, operand_types: list[IntType], result_type: IntType
) -> Optional[Callable]:
    """Compile one datapath opcode to a closure over Python ints.

    Mirrors :func:`repro.opt.constant_folding.evaluate_op` exactly
    (including division-by-zero totality, shift-modulo semantics and
    the operand-type bit masking of the bitwise ops), with the result
    wrap folded in — the bit-identity contract with the interpreter
    rests on this correspondence.
    """
    wrap = _wrap_fn(result_type)
    if opcode is Opcode.ADD:
        return lambda a, b: wrap(a + b)
    if opcode is Opcode.SUB:
        return lambda a, b: wrap(a - b)
    if opcode is Opcode.MUL:
        return lambda a, b: wrap(a * b)
    if opcode is Opcode.DIV:

        def div(a: int, b: int) -> int:
            if b == 0:
                return wrap(0)
            quotient = abs(a) // abs(b)
            return wrap(-quotient if (a < 0) != (b < 0) else quotient)

        return div
    if opcode is Opcode.REM:

        def rem(a: int, b: int) -> int:
            if b == 0:
                return wrap(0)
            magnitude = abs(a) % abs(b)
            return wrap(-magnitude if a < 0 else magnitude)

        return rem
    if opcode is Opcode.NEG:
        return lambda a: wrap(-a)
    if opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
        mask0 = (1 << operand_types[0].width) - 1
        mask1 = (1 << operand_types[1].width) - 1
        if opcode is Opcode.AND:
            return lambda a, b: wrap((a & mask0) & (b & mask1))
        if opcode is Opcode.OR:
            return lambda a, b: wrap((a & mask0) | (b & mask1))
        return lambda a, b: wrap((a & mask0) ^ (b & mask1))
    if opcode is Opcode.NOT:
        return lambda a: wrap(~a)
    if opcode in (Opcode.SHL, Opcode.SHR):
        modulus = max(1, result_type.width)
        if opcode is Opcode.SHL:
            return lambda a, b: wrap(a << (b % modulus))
        if operand_types[0].signed:
            return lambda a, b: wrap(a >> (b % modulus))
        mask0 = (1 << operand_types[0].width) - 1
        return lambda a, b: wrap((a & mask0) >> (b % modulus))
    if opcode in (Opcode.EQ, Opcode.NE, Opcode.LT, Opcode.LE, Opcode.GT, Opcode.GE):
        true_value = wrap(1)
        false_value = wrap(0)
        if opcode is Opcode.EQ:
            return lambda a, b: true_value if a == b else false_value
        if opcode is Opcode.NE:
            return lambda a, b: true_value if a != b else false_value
        if opcode is Opcode.LT:
            return lambda a, b: true_value if a < b else false_value
        if opcode is Opcode.LE:
            return lambda a, b: true_value if a <= b else false_value
        if opcode is Opcode.GT:
            return lambda a, b: true_value if a > b else false_value
        return lambda a, b: true_value if a >= b else false_value
    if opcode is Opcode.MOV:
        return lambda a: wrap(a)
    return None


def _op_fields(op) -> tuple:
    """``(opcode, result, operands, array_name)`` of a scheduled op or
    a DFG :class:`VariantOp` — the two shapes the fast tiers execute."""
    if isinstance(op, Instruction):
        return (
            op.opcode,
            op.result,
            list(op.operands),
            op.array.name if op.array is not None else None,
        )
    assert isinstance(op, VariantOp)
    return op.opcode, op.result, list(op.operands), op.array_name


class CompiledDesign:
    """One FSMD design lowered into a slot-indexed execution plan.

    Compile once (the constructor), then :meth:`run` any number of
    trials; :meth:`bind_key` specializes the key-dependent cells per
    working key and is called automatically by :meth:`run`.  Instances
    hold closures and are deliberately **not picklable** — worker
    processes compile their own plan from the (picklable) design via
    :func:`compiled_for`.
    """

    def __init__(self, design: FsmdDesign) -> None:
        self.design = design
        layout = self.layout = DesignLayout(design)
        self._reg_slots = layout.reg_slots
        self._n_regs = layout.n_regs
        self._mem_slots = layout.mem_slots
        self._mem_names = layout.mem_names
        self._memory_specs = layout.memory_specs
        # --- key-dependent cells (filled by bind_key) --------------
        self._kconst_cells: dict[ObfuscatedConstant, list[int]] = {}
        self._rom_cells: dict[str, list[int]] = {}
        self._rom_binds: list[tuple] = []
        self._kb_binds: list[tuple[int, list[int]]] = []
        self._variant_binds: list[tuple] = []
        self._bound_key: Optional[int] = None
        self._n_scalar_params = layout.n_scalar_params
        self._param_latches = layout.param_latches
        # --- states, ops and transitions ---------------------------
        self._state_names = layout.state_names
        self._done = layout.done
        self._trans: list[tuple] = []
        self._state_ops: list[list] = [[] for _ in layout.states]
        for idx, ops in enumerate(layout.state_op_lists):
            if ops is not None:
                self._state_ops[idx] = self._compile_ops(ops)
            self._compile_transition(layout.transition_specs[idx])
        for variants, tables in layout.variant_tables:
            compiled_tables = [
                (idx, {sel: self._compile_ops(ops) for sel, ops in per_selector.items()})
                for idx, per_selector in tables
            ]
            self._variant_binds.append((variants, compiled_tables))
        self._entry_idx = layout.entry_idx

    # ------------------------------------------------------------------
    # Compilation helpers
    # ------------------------------------------------------------------
    def _reader(self, value: Value) -> _Reader:
        """Compile one operand read against the flat register file."""
        if isinstance(value, ObfuscatedConstant):
            cell = self._kconst_cells.setdefault(value, [0])
            return lambda regs, _c=cell: _c[0]
        if isinstance(value, Constant):
            return lambda regs, _v=value.value: _v
        register = self.design.binding.register_of.get(value)
        if register is None:
            raise SimulationError(f"value {value} has no bound register")
        slot = self._reg_slots[register.name]
        assert isinstance(value.type, IntType)
        if self.layout.elidable_read(slot, value.type):
            return lambda regs, _s=slot: regs[_s]
        wrap = _wrap_fn(value.type)
        return lambda regs, _s=slot, _w=wrap: _w(regs[_s])

    def _result_slot(self, result: Value) -> tuple[int, Callable[[int], int]]:
        register = self.design.binding.register_of.get(result)
        if register is None:
            raise SimulationError(f"value {result} has no bound register")
        assert isinstance(result.type, IntType)
        return self._reg_slots[register.name], _wrap_fn(result.type)

    def _rom_cell(self, array_name: str, element_type: IntType) -> list[int]:
        cell = self._rom_cells.get(array_name)
        if cell is None:
            cell = [0]
            self._rom_cells[array_name] = cell
            rom = self.design.obfuscated_roms[array_name]
            self._rom_binds.append((rom, element_type, cell))
        return cell

    def _compile_ops(self, ops: Sequence) -> list:
        compiled = [self._compile_op(op) for op in ops]
        return [ex for ex in compiled if ex is not None]

    def _compile_op(self, op) -> Optional[Callable]:
        opcode, result, operands, array_name = _op_fields(op)

        if opcode in (Opcode.JUMP, Opcode.BRANCH):
            return None  # handled by the compiled transitions
        if opcode is Opcode.RET:
            if operands:
                read = self._reader(operands[0])

                def ex_ret(regs, mems, writes, memw, _r=read):
                    return _r(regs)

                return ex_ret

            def ex_ret_void(regs, mems, writes, memw):
                return 0

            return ex_ret_void
        if opcode is Opcode.LOAD:
            assert array_name is not None and result is not None
            mem_idx = self._mem_slots[array_name]
            index_read = self._reader(operands[0])
            slot, wrap = self._result_slot(result)
            rom = self.design.obfuscated_roms.get(array_name)
            if rom is None:

                def ex_load(
                    regs,
                    mems,
                    writes,
                    memw,
                    _m=mem_idx,
                    _i=index_read,
                    _s=slot,
                    _w=wrap,
                    _name=array_name,
                ):
                    memory = mems[_m]
                    size = len(memory)
                    if size == 0:
                        raise zero_size_memory_error(_name)
                    writes.append((_s, _w(memory[_i(regs) % size])))

                return ex_load
            element_type = self.design.func.arrays[array_name].element_type
            element_mask = (1 << element_type.width) - 1
            element_wrap = _wrap_fn(element_type)
            cell = self._rom_cell(array_name, element_type)

            def ex_load_rom(
                regs,
                mems,
                writes,
                memw,
                _m=mem_idx,
                _i=index_read,
                _s=slot,
                _w=wrap,
                _em=element_mask,
                _ew=element_wrap,
                _c=cell,
                _name=array_name,
            ):
                memory = mems[_m]
                size = len(memory)
                if size == 0:
                    raise zero_size_memory_error(_name)
                raw = memory[_i(regs) % size]
                writes.append((_s, _w(_ew((raw & _em) ^ _c[0]))))

            return ex_load_rom
        if opcode is Opcode.STORE:
            assert array_name is not None
            mem_idx = self._mem_slots[array_name]
            index_read = self._reader(operands[0])
            value_read = self._reader(operands[1])
            element_type = self.design.func.arrays[array_name].element_type
            element_wrap = _wrap_fn(element_type)

            def ex_store(
                regs,
                mems,
                writes,
                memw,
                _m=mem_idx,
                _i=index_read,
                _v=value_read,
                _ew=element_wrap,
            ):
                memw.append((_m, _i(regs), _ew(_v(regs))))

            return ex_store
        if opcode is Opcode.CALL:
            raise SimulationError("calls must be inlined before simulation")
        # Datapath op or MOV.
        assert result is not None
        assert isinstance(result.type, IntType)
        operand_types: list[IntType] = []
        for operand in operands:
            assert isinstance(operand.type, IntType)
            operand_types.append(operand.type)
        fn = _arith_fn(opcode, operand_types, result.type)
        if fn is None:
            raise SimulationError(f"cannot evaluate opcode {opcode}")
        slot, _ = self._result_slot(result)
        if all(isinstance(v, Constant) for v in operands):
            # Fully-constant op: fold at compile time (the interpreter
            # recomputes the same value every cycle).
            value = fn(*[v.value for v in operands])

            def ex_const(regs, mems, writes, memw, _s=slot, _v=value):
                writes.append((_s, _v))

            return ex_const
        readers = [self._reader(v) for v in operands]
        if len(readers) == 1:

            def ex_unary(regs, mems, writes, memw, _r=readers[0], _f=fn, _s=slot):
                writes.append((_s, _f(_r(regs))))

            return ex_unary

        def ex_binary(
            regs, mems, writes, memw, _a=readers[0], _b=readers[1], _f=fn, _s=slot
        ):
            writes.append((_s, _f(_a(regs), _b(regs))))

        return ex_binary

    def _compile_transition(self, spec: tuple) -> None:
        if spec[0] == _COND:
            _, condition, key_bit, true_idx, false_idx = spec
            reader = self._reader(condition)
            key_bit_cell = [0]
            if key_bit is not None:
                self._kb_binds.append((key_bit, key_bit_cell))
            self._trans.append((1, reader, key_bit_cell, true_idx, false_idx))
        else:
            self._trans.append((0, spec[1]))

    # ------------------------------------------------------------------
    # Per-key specialization
    # ------------------------------------------------------------------
    def bind_key(self, working_key: int) -> None:
        """Fill every key-dependent cell for ``working_key``.

        Cheap — O(obfuscated constants + ROMs + masked branches +
        variant blocks), independent of cycle count — and memoized on
        the last bound key, so re-running the same key rebinds nothing.
        """
        if working_key == self._bound_key:
            return
        for oc, cell in self._kconst_cells.items():
            cell[0] = oc.decode(working_key)
        for rom, element_type, cell in self._rom_binds:
            cell[0] = rom.mask_for(element_type, working_key)
        for bit, cell in self._kb_binds:
            cell[0] = (working_key >> bit) & 1
        state_ops = self._state_ops
        for variants, tables in self._variant_binds:
            selector = variants.selector(working_key)
            for idx, per_selector in tables:
                state_ops[idx] = per_selector[selector]
        self._bound_key = working_key

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        args: Sequence[int] = (),
        arrays: Optional[dict[str, list[int]]] = None,
        working_key: int = 0,
        max_cycles: int = 2_000_000,
        trace: bool = False,
    ) -> SimulationResult:
        if len(args) != self._n_scalar_params:
            raise SimulationError(
                f"{self.design.func.name} expects {self._n_scalar_params} "
                f"scalar args, got {len(args)}"
            )
        self.bind_key(working_key)
        regs = [0] * self._n_regs
        for latch, arg in zip(self._param_latches, args):
            if latch is not None:
                slot, wrap = latch
                regs[slot] = wrap(arg)
        mems, arrays_by_name = self.layout.initial_memories(arrays)

        state_ops = self._state_ops
        transitions = self._trans
        done = self._done
        state_names = self._state_names
        mem_names = self._mem_names
        state = self._entry_idx
        state_trace: list[str] = []
        writes: list[tuple[int, int]] = []
        memory_writes: list[tuple[int, int, int]] = []
        cycles = 0
        completed = False
        return_register_value: Optional[int] = None
        while cycles < max_cycles:
            cycles += 1
            if trace:
                state_trace.append(state_names[state])
            returned: Optional[int] = None
            ops = state_ops[state]
            if ops:
                # Phase 1: combinational reads against old register
                # values; Phase 2: clock edge — commit the writes.
                del writes[:]
                del memory_writes[:]
                for ex in ops:
                    value = ex(regs, mems, writes, memory_writes)
                    if value is not None:
                        returned = value
                for slot, value in writes:
                    regs[slot] = value
                for mem_idx, index, value in memory_writes:
                    memory = mems[mem_idx]
                    size = len(memory)
                    if size == 0:
                        raise zero_size_memory_error(mem_names[mem_idx])
                    memory[index % size] = value
            if returned is not None or done[state]:
                return_register_value = returned
                completed = True
                break
            transition = transitions[state]
            if transition[0]:
                condition = transition[1](regs)
                next_state = (
                    transition[3]
                    if (condition & 1) ^ transition[2][0]
                    else transition[4]
                )
            else:
                next_state = transition[1]
            if next_state is None:
                completed = True
                break
            state = next_state

        return SimulationResult(
            return_value=return_register_value,
            arrays=arrays_by_name,
            cycles=cycles,
            completed=completed,
            state_trace=state_trace,
        )


# ----------------------------------------------------------------------
# Compile-once cache
# ----------------------------------------------------------------------
#: See :class:`repro.sim.layout.PlanCache` for the eviction contract.
_COMPILE_CACHE_LIMIT = 8
_COMPILE_CACHE = PlanCache(CompiledDesign, limit=_COMPILE_CACHE_LIMIT)


def compiled_for(design: FsmdDesign) -> CompiledDesign:
    """The (memoized) compiled plan for ``design``.

    Keyed on object identity and validated against
    :func:`repro.sim.layout.design_fingerprint`; the cache holds at
    most :data:`_COMPILE_CACHE_LIMIT` recent plans.
    """
    return _COMPILE_CACHE.plan_for(design)

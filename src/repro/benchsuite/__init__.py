"""The five-benchmark evaluation suite (gsm, adpcm, sobel, backprop,
viterbi), written from scratch in the repro C subset."""

from repro.benchsuite.registry import (
    Benchmark,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
)

__all__ = ["Benchmark", "all_benchmarks", "benchmark_names", "get_benchmark"]

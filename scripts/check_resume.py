#!/usr/bin/env python3
"""CI gate: a SIGKILLed campaign must resume to byte-identical results.

Drives the resumable-service acceptance scenario end to end:

1. run a small two-benchmark campaign to completion (the reference
   document);
2. start the same campaign against a checkpoint directory, wait for
   the first per-unit record to land, then SIGKILL the whole process
   group mid-flight — no cleanup handlers, no atexit;
3. rerun with ``--resume`` and assert the final JSON is byte-identical
   to the uninterrupted run and that at least one unit was actually
   resumed from a checkpoint (the summary line reports the count).

A warm persistent cache can finish the campaign before the kill lands;
in that case the gate degrades gracefully: it deletes the output and
one checkpoint record to synthesize an interrupted state, so the
resume contract is still exercised.

Usage: ``check_resume.py [--workdir DIR] [--benchmarks CSV] [--keys N]
[--seed N]``; exits non-zero with a diagnostic per violated property.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def campaign_argv(
    args: argparse.Namespace, out: Path, ckpt: Path | None, resume: bool
) -> list[str]:
    argv = [
        sys.executable, "-m", "repro", "campaign",
        "--benchmarks", args.benchmarks,
        "--keys", str(args.keys),
        "--seed", str(args.seed),
        "--jobs", str(args.jobs),
        "-o", str(out),
    ]
    if ckpt is not None:
        argv += ["--checkpoint-dir", str(ckpt)]
    if resume:
        argv.append("--resume")
    return argv


def unit_records(ckpt: Path) -> list[Path]:
    """Per-unit checkpoint records (the manifest spec.json excluded)."""
    return [p for p in ckpt.glob("*/*.json") if p.name != "spec.json"]


def run_killed_campaign(args: argparse.Namespace, out: Path, ckpt: Path) -> None:
    """Start the campaign and SIGKILL its process group mid-flight."""
    proc = subprocess.Popen(
        campaign_argv(args, out, ckpt, resume=False),
        start_new_session=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + args.timeout
        while time.monotonic() < deadline:
            if unit_records(ckpt):
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        else:
            raise SystemExit(
                f"FAIL: no checkpoint record appeared within {args.timeout}s"
            )
        if proc.poll() is None:
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            print(
                f"killed campaign mid-flight with "
                f"{len(unit_records(ckpt))} unit(s) checkpointed"
            )
        else:
            # Warm caches can outrun the poll loop: synthesize the
            # interrupted state instead of failing the gate.
            records = unit_records(ckpt)
            if not records:
                raise SystemExit(
                    "FAIL: campaign exited without checkpointing any unit"
                )
            out.unlink(missing_ok=True)
            records[-1].unlink()
            print(
                "campaign finished before the kill landed; removed the "
                "output and one checkpoint record to synthesize an "
                "interrupted state"
            )
    finally:
        if proc.poll() is None:  # pragma: no cover - safety net
            os.killpg(proc.pid, signal.SIGKILL)
    if out.exists():
        raise SystemExit(
            "FAIL: interrupted campaign still published its output file"
        )


def check(args: argparse.Namespace, workdir: Path) -> int:
    clean_out = workdir / "clean.json"
    subprocess.run(
        campaign_argv(args, clean_out, None, resume=False),
        check=True, stdout=subprocess.DEVNULL,
    )

    ckpt = workdir / "checkpoints"
    killed_out = workdir / "killed.json"
    run_killed_campaign(args, killed_out, ckpt)

    resumed_out = workdir / "resumed.json"
    done = subprocess.run(
        campaign_argv(args, resumed_out, ckpt, resume=True),
        check=True, capture_output=True, text=True,
    )

    problems: list[str] = []
    if resumed_out.read_bytes() != clean_out.read_bytes():
        problems.append(
            "resumed campaign JSON differs from the uninterrupted run "
            "(resume must be byte-identical)"
        )
    summary = [
        line for line in done.stdout.splitlines() if "resumed" in line
    ]
    if not summary:
        problems.append(
            "resume run's summary never reported a resumed-unit count"
        )
    elif " 0 resumed" in summary[-1]:
        problems.append(
            f"resume run resumed no units from the checkpoint: "
            f"{summary[-1].strip()!r}"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print(
        "interrupt-resume contract holds: SIGKILLed campaign resumed to "
        f"a byte-identical document ({summary[-1].strip()})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", default="sobel,adpcm")
    parser.add_argument("--keys", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the first checkpoint record",
    )
    parser.add_argument(
        "--workdir", type=Path, default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)
    if args.workdir is not None:
        args.workdir.mkdir(parents=True, exist_ok=True)
        return check(args, args.workdir)
    with tempfile.TemporaryDirectory(prefix="check-resume-") as tmp:
        return check(args, Path(tmp))


if __name__ == "__main__":
    sys.exit(main())

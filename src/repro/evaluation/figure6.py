"""Figure 6 regeneration: normalized area overhead per obfuscation.

For every benchmark, synthesize the baseline and three obfuscated
versions (branches only, constants only, DFG variants only) and report
each area normalized against the baseline — the same bars Figure 6
plots.  The paper's annotations (branches +0-2 %, constants +4-31 %
avg ~10 %, variants +11-31 % avg ~21 %, backprop worst) are included
for side-by-side comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchsuite import all_benchmarks
from repro.rtl.area_model import estimate_area
from repro.tao.flow import TaoFlow
from repro.tao.key import ObfuscationParameters
from repro.tao.pipeline import FlowSpec

#: Per-benchmark overhead percentages annotated on the paper's Figure 6.
PAPER_FIGURE6 = {
    "gsm": {"branches": 1, "constants": 4, "dfg": 18},
    "adpcm": {"branches": 0, "constants": 6, "dfg": 23},
    "sobel": {"branches": 2, "constants": 5, "dfg": 11},
    "backprop": {"branches": 0, "constants": 11, "dfg": 31},
    "viterbi": {"branches": 1, "constants": 20, "dfg": 25},
}


@dataclass
class Figure6Row:
    """Normalized area overheads of one benchmark (fractions, not %)."""

    benchmark: str
    baseline_area: float
    branches_overhead: float
    constants_overhead: float
    dfg_overhead: float
    combined_overhead: float
    breakdown: dict[str, float] = field(default_factory=dict)


def _overhead(source: str, top: str, baseline_area: float, **param_kwargs) -> float:
    params = ObfuscationParameters(**param_kwargs)
    component = TaoFlow(
        params=params, pipeline=FlowSpec.from_parameters(params)
    ).obfuscate(source, top)
    area = estimate_area(component.design).total
    return area / baseline_area - 1.0


def measure_benchmark(name: str) -> Figure6Row:
    """Compute the four bars for one benchmark."""
    bench = all_benchmarks()[name]
    baseline = TaoFlow().synthesize_baseline(bench.source, bench.top)
    baseline_area = estimate_area(baseline).total
    branches = _overhead(
        bench.source,
        bench.top,
        baseline_area,
        obfuscate_constants=False,
        obfuscate_dfg=False,
    )
    constants = _overhead(
        bench.source,
        bench.top,
        baseline_area,
        obfuscate_branches=False,
        obfuscate_dfg=False,
    )
    dfg = _overhead(
        bench.source,
        bench.top,
        baseline_area,
        obfuscate_constants=False,
        obfuscate_branches=False,
    )
    combined = _overhead(bench.source, bench.top, baseline_area)
    return Figure6Row(
        benchmark=name,
        baseline_area=baseline_area,
        branches_overhead=branches,
        constants_overhead=constants,
        dfg_overhead=dfg,
        combined_overhead=combined,
    )


def generate_figure6() -> list[Figure6Row]:
    return [measure_benchmark(name) for name in all_benchmarks()]


def format_figure6(rows: list[Figure6Row]) -> str:
    lines = [
        "Figure 6: Area overhead of TAO obfuscations, normalized to the "
        "baseline (ours % | paper %)",
        f"{'Benchmark':<10} {'branches':>16} {'constants':>16} "
        f"{'DFG variants':>16} {'combined':>10}",
    ]
    sums = {"branches": 0.0, "constants": 0.0, "dfg": 0.0}
    for row in rows:
        paper = PAPER_FIGURE6.get(row.benchmark, {})
        branches = f"+{100 * row.branches_overhead:.1f} | +{paper.get('branches', '?')}"
        constants = f"+{100 * row.constants_overhead:.1f} | +{paper.get('constants', '?')}"
        dfg = f"+{100 * row.dfg_overhead:.1f} | +{paper.get('dfg', '?')}"
        lines.append(
            f"{row.benchmark:<10} {branches:>16} {constants:>16} "
            f"{dfg:>16} {'+%.1f' % (100 * row.combined_overhead):>10}"
        )
        sums["branches"] += row.branches_overhead
        sums["constants"] += row.constants_overhead
        sums["dfg"] += row.dfg_overhead
    n = max(1, len(rows))
    lines.append(
        f"{'average':<10} {'+%.1f | ~+1' % (100 * sums['branches'] / n):>16} "
        f"{'+%.1f | ~+10' % (100 * sums['constants'] / n):>16} "
        f"{'+%.1f | ~+21' % (100 * sums['dfg'] / n):>16}"
    )
    return "\n".join(lines)

"""Functions and modules: the top-level IR containers."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.basic_block import BasicBlock
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import Type, VoidType
from repro.ir.values import ArrayValue, Value, Variable


class Function:
    """A function: an ordered collection of basic blocks plus signature.

    Attributes:
        name: Function name, unique within the module.
        return_type: IR type of the returned value (``VOID`` for none).
        params: Ordered list of parameter values (scalars or arrays).
        blocks: Mapping from block name to :class:`BasicBlock`,
            insertion-ordered; the first block is the entry.
        arrays: Local and parameter arrays, by name.
    """

    def __init__(self, name: str, return_type: Type) -> None:
        self.name = name
        self.return_type = return_type
        self.params: list[Value] = []
        self.blocks: dict[str, BasicBlock] = {}
        self.arrays: dict[str, ArrayValue] = {}
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_param(self, param: Value) -> Value:
        self.params.append(param)
        if isinstance(param, ArrayValue):
            self.arrays[param.name] = param
        return param

    def add_array(self, array: ArrayValue) -> ArrayValue:
        if array.name in self.arrays:
            raise ValueError(f"duplicate array {array.name} in {self.name}")
        self.arrays[array.name] = array
        return array

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create a fresh uniquely-named basic block."""
        name = f"{hint}{self._label_counter}"
        self._label_counter += 1
        while name in self.blocks:
            name = f"{hint}{self._label_counter}"
            self._label_counter += 1
        block = BasicBlock(name)
        self.blocks[name] = block
        return block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self.blocks:
            raise ValueError(f"duplicate block {block.name} in {self.name}")
        self.blocks[block.name] = block
        return block

    def remove_block(self, name: str) -> None:
        del self.blocks[name]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return next(iter(self.blocks.values()))

    def block(self, name: str) -> BasicBlock:
        return self.blocks[name]

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over all instructions in block order."""
        for block in self.blocks.values():
            yield from block.instructions

    def scalar_params(self) -> list[Variable]:
        return [p for p in self.params if isinstance(p, Variable)]

    def array_params(self) -> list[ArrayValue]:
        return [p for p in self.params if isinstance(p, ArrayValue)]

    def local_arrays(self) -> list[ArrayValue]:
        return [a for a in self.arrays.values() if not a.is_param]

    def conditional_branches(self) -> list[Instruction]:
        """All two-way branch instructions (TAO's CJMP count)."""
        return [
            inst for inst in self.instructions() if inst.opcode is Opcode.BRANCH
        ]

    @property
    def returns_value(self) -> bool:
        return not isinstance(self.return_type, VoidType)

    def __str__(self) -> str:
        params = ", ".join(f"{p.type} {p.name}" for p in self.params)
        lines = [f"func {self.return_type} @{self.name}({params}) {{"]
        for array in self.local_arrays():
            lines.append(f"  alloc {array.type} {array.name}")
        for block in self.blocks.values():
            lines.append(str(block))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A compilation unit: an ordered set of functions.

    Attributes:
        name: Module name (usually the source file stem).
        functions: Mapping from function name to :class:`Function`.
        source_lines: Number of source lines the module was built from
            (reported in Table 1 reproductions).
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.source_lines: int = 0

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        return self.functions[name]

    def get(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Module {self.name} ({len(self.functions)} functions)>"

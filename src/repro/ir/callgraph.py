"""Call-graph extraction (TAO §3.3.1: "Creation of the Call Graph").

TAO analyses the call graph to determine the function hierarchy before
apportioning working-key bits across constants, branches and basic
blocks.
"""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.ir.instructions import Opcode


class CallGraph:
    """Static call graph of a module.

    Attributes:
        callees: function name -> ordered unique callee names.
        callers: function name -> set of caller names.
    """

    def __init__(self, module: Module) -> None:
        self.module = module
        self.callees: dict[str, list[str]] = {}
        self.callers: dict[str, set[str]] = {name: set() for name in module.functions}
        for func in module:
            seen: list[str] = []
            for inst in func.instructions():
                if inst.opcode is Opcode.CALL and inst.callee is not None:
                    if inst.callee not in seen:
                        seen.append(inst.callee)
                    if inst.callee in self.callers:
                        self.callers[inst.callee].add(func.name)
            self.callees[func.name] = seen

    def roots(self) -> list[str]:
        """Functions never called by another module function."""
        return [name for name, callers in self.callers.items() if not callers]

    def leaf_functions(self) -> list[str]:
        """Functions that call nothing."""
        return [name for name, callees in self.callees.items() if not callees]

    def is_recursive(self, name: str) -> bool:
        """True when ``name`` can reach itself through calls."""
        stack = list(self.callees.get(name, []))
        visited: set[str] = set()
        while stack:
            node = stack.pop()
            if node == name:
                return True
            if node in visited:
                continue
            visited.add(node)
            stack.extend(self.callees.get(node, []))
        return False

    def topological_order(self) -> list[str]:
        """Callees before callers (bottom-up order for inlining).

        Raises ValueError if the call graph has a cycle (recursion),
        which our HLS flow does not support.
        """
        indegree = {name: 0 for name in self.module.functions}
        for callees in self.callees.values():
            for callee in callees:
                if callee in indegree:
                    indegree[callee] += 1
        # Kahn's algorithm on reversed edges: start from functions nobody
        # calls *from* (leaves), emit callees first.
        order: list[str] = []
        remaining = dict(self.callees)
        emitted: set[str] = set()
        progress = True
        while remaining and progress:
            progress = False
            for name in list(remaining):
                if all(c in emitted or c not in remaining for c in remaining[name]):
                    order.append(name)
                    emitted.add(name)
                    del remaining[name]
                    progress = True
        if remaining:
            raise ValueError(f"recursive call graph involving {sorted(remaining)}")
        return order

    def reachable_from(self, root: str) -> set[str]:
        """All functions transitively callable from ``root`` (inclusive)."""
        visited = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for callee in self.callees.get(node, []):
                if callee not in visited and callee in self.module.functions:
                    visited.add(callee)
                    stack.append(callee)
        return visited

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        edges = sum(len(c) for c in self.callees.values())
        return f"<CallGraph {len(self.callees)} functions, {edges} edges>"

"""Lowering tests: compile C-subset programs and check their golden
interpretation against Python-computed expectations (C semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_c
from repro.ir.verifier import verify_module
from repro.sim.interpreter import run_function


def run(source, func, args=(), arrays=None):
    module = compile_c(source)
    return run_function(module, func, args, arrays)


class TestArithmetic:
    def test_basic_expression(self):
        result = run("int f(int x) { return x * 3 + 2; }", "f", [5])
        assert result.return_value == 17

    def test_division_truncates_toward_zero(self):
        source = "int f(int a, int b) { return a / b; }"
        assert run(source, "f", [7, 2]).return_value == 3
        assert run(source, "f", [-7, 2]).return_value == -3
        assert run(source, "f", [7, -2]).return_value == -3

    def test_remainder_sign_follows_dividend(self):
        source = "int f(int a, int b) { return a % b; }"
        assert run(source, "f", [7, 3]).return_value == 1
        assert run(source, "f", [-7, 3]).return_value == -1

    def test_division_by_zero_is_zero(self):
        assert run("int f(int a) { return a / 0; }", "f", [5]).return_value == 0
        assert run("int f(int a) { return a % 0; }", "f", [5]).return_value == 0

    def test_shifts(self):
        assert run("int f(int x) { return x << 3; }", "f", [1]).return_value == 8
        assert run("int f(int x) { return x >> 2; }", "f", [-8]).return_value == -2

    def test_bitwise(self):
        source = "int f(int a, int b) { return (a & b) | (a ^ b); }"
        assert run(source, "f", [0b1100, 0b1010]).return_value == 0b1110

    def test_overflow_wraps_32bit(self):
        result = run("int f(int x) { return x * x; }", "f", [0x10000])
        assert result.return_value == 0  # 2^32 wraps to 0

    def test_unary(self):
        assert run("int f(int x) { return -x; }", "f", [7]).return_value == -7
        assert run("int f(int x) { return ~x; }", "f", [0]).return_value == -1
        assert run("int f(int x) { return !x; }", "f", [0]).return_value == 1

    def test_comparisons(self):
        source = "int f(int a, int b) { return (a < b) + (a <= b) * 10 + (a == b) * 100; }"
        assert run(source, "f", [1, 2]).return_value == 11
        assert run(source, "f", [2, 2]).return_value == 110

    def test_char_narrowing(self):
        result = run("int f() { char c = 200; return c; }", "f")
        assert result.return_value == 200 - 256

    def test_cast(self):
        result = run("int f(int x) { return (char)x; }", "f", [300])
        assert result.return_value == 300 - 256


class TestControlFlow:
    def test_if_else(self):
        source = "int f(int x) { if (x > 0) return 1; else return -1; }"
        assert run(source, "f", [5]).return_value == 1
        assert run(source, "f", [-5]).return_value == -1

    def test_for_loop_sum(self):
        source = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }"
        assert run(source, "f", [10]).return_value == 55

    def test_while_loop(self):
        source = "int f(int n) { int c = 0; while (n > 1) { if (n % 2) n = 3 * n + 1; else n /= 2; c++; } return c; }"
        assert run(source, "f", [6]).return_value == 8  # collatz(6)

    def test_do_while_runs_once(self):
        source = "int f() { int c = 0; do { c++; } while (0); return c; }"
        assert run(source, "f").return_value == 1

    def test_break(self):
        source = "int f() { int i; for (i = 0; i < 100; i++) { if (i == 7) break; } return i; }"
        assert run(source, "f").return_value == 7

    def test_continue(self):
        source = "int f() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; } return s; }"
        assert run(source, "f").return_value == 20

    def test_nested_loops(self):
        source = """
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; i++)
            for (int j = 0; j <= i; j++)
              s += 1;
          return s;
        }
        """
        assert run(source, "f", [4]).return_value == 10

    def test_ternary(self):
        source = "int f(int a, int b) { return a > b ? a : b; }"
        assert run(source, "f", [3, 9]).return_value == 9

    def test_short_circuit_value_semantics(self):
        source = "int f(int a, int b) { return (a && b) + (a || b) * 10; }"
        assert run(source, "f", [2, 0]).return_value == 10
        assert run(source, "f", [2, 3]).return_value == 11

    def test_early_return_makes_tail_unreachable(self):
        source = "int f() { return 1; }"
        module = compile_c(source)
        verify_module(module)


class TestArraysAndCalls:
    def test_array_readwrite(self):
        source = """
        int f(int data[4], int out[4]) {
          for (int i = 0; i < 4; i++) out[i] = data[3 - i];
          return out[0];
        }
        """
        result = run(source, "f", [], {"data": [10, 20, 30, 40]})
        assert result.arrays["out"] == [40, 30, 20, 10]
        assert result.return_value == 40

    def test_local_array_initializer(self):
        source = """
        int f(int i) {
          int rom[4] = {5, 6, 7, 8};
          return rom[i];
        }
        """
        assert run(source, "f", [2]).return_value == 7

    def test_global_const_array(self):
        source = """
        const int table[3] = {11, 22, 33};
        int f(int i) { return table[i]; }
        """
        assert run(source, "f", [1]).return_value == 22

    def test_call_with_scalar(self):
        source = "int sq(int x) { return x * x; } int f(int x) { return sq(x) + sq(x + 1); }"
        assert run(source, "f", [3]).return_value == 25

    def test_call_with_array_binding(self):
        source = """
        int total(int a[4]) { int s = 0; for (int i = 0; i < 4; i++) s += a[i]; return s; }
        int f(int data[4]) { return total(data) * 2; }
        """
        assert run(source, "f", [], {"data": [1, 2, 3, 4]}).return_value == 20

    def test_callee_writes_caller_array(self):
        source = """
        void fill(int a[4], int v) { for (int i = 0; i < 4; i++) a[i] = v; }
        int f(int data[4]) { fill(data, 9); return data[3]; }
        """
        result = run(source, "f", [], {"data": [0, 0, 0, 0]})
        assert result.return_value == 9
        assert result.arrays["data"] == [9, 9, 9, 9]

    def test_shadowed_variable_in_loop(self):
        source = """
        int f() {
          int x = 1;
          for (int i = 0; i < 3; i++) { int x = 10; x += i; }
          return x;
        }
        """
        assert run(source, "f").return_value == 1


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
)
def test_property_polynomial_matches_python(a, b, c):
    """Property: compiled arithmetic equals Python's over small ints."""
    source = "int f(int a, int b, int c) { return a * b + b * c - a * c + (a - b); }"
    expected = a * b + b * c - a * c + (a - b)
    assert run(source, "f", [a, b, c]).return_value == expected


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=-100, max_value=100), min_size=8, max_size=8))
def test_property_array_sum_matches_python(values):
    source = """
    int f(int a[8]) {
      int s = 0;
      for (int i = 0; i < 8; i++) s += a[i];
      return s;
    }
    """
    assert run(source, "f", [], {"a": values}).return_value == sum(values)

"""Command-line interface for the TAO reproduction.

Usage (after ``pip install -e .``)::

    python -m repro obfuscate design.c --top kernel -o out/
    python -m repro analyze design.c --top kernel
    python -m repro baseline design.c --top kernel -o out/
    python -m repro table1
    python -m repro figure6
    python -m repro validate --benchmark sobel --keys 20

``obfuscate`` writes the obfuscated Verilog, the locking key, and a
JSON key manifest; ``analyze`` prints the key apportionment (Eq. 1)
without synthesizing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.rtl import emit_verilog, estimate_area, estimate_timing
from repro.tao import LockingKey, ObfuscationParameters, TaoFlow


def _add_flow_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", type=Path, help="C-subset source file")
    parser.add_argument("--top", required=True, help="top-level function name")
    parser.add_argument(
        "--constant-width", type=int, default=32, help="C: bits per constant"
    )
    parser.add_argument(
        "--block-bits", type=int, default=4, help="B_i: key bits per basic block"
    )
    parser.add_argument(
        "--no-constants", action="store_true", help="disable constant obfuscation"
    )
    parser.add_argument(
        "--no-branches", action="store_true", help="disable branch masking"
    )
    parser.add_argument(
        "--no-dfg", action="store_true", help="disable DFG variants"
    )
    parser.add_argument(
        "--key-scheme",
        choices=("replication", "aes"),
        default="replication",
        help="working-key management scheme (paper §3.4)",
    )
    parser.add_argument(
        "--locking-key",
        help="hex locking key (256-bit); random when omitted",
    )


def _parameters(args: argparse.Namespace) -> ObfuscationParameters:
    return ObfuscationParameters(
        constant_width=args.constant_width,
        block_bits=args.block_bits,
        obfuscate_constants=not args.no_constants,
        obfuscate_branches=not args.no_branches,
        obfuscate_dfg=not args.no_dfg,
    )


def _locking_key(args: argparse.Namespace) -> Optional[LockingKey]:
    if args.locking_key:
        return LockingKey(bits=int(args.locking_key, 16), width=256)
    return None


def cmd_analyze(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    flow = TaoFlow(params=_parameters(args))
    module = flow.compile_front_end(source, args.source.stem)
    apportionment = flow.analyze(module, args.top)
    print(f"function        : {args.top}")
    print(f"basic blocks    : {apportionment.num_blocks}")
    print(f"cond. branches  : {apportionment.num_branches}")
    print(f"constants       : {apportionment.num_constants}")
    print(
        f"working key W   : {apportionment.working_key_bits} bits "
        f"(Eq. 1: {apportionment.num_branches} + "
        f"{apportionment.num_constants} x {args.constant_width} + "
        f"{apportionment.num_blocks} x {args.block_bits})"
    )
    return 0


def cmd_obfuscate(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    flow = TaoFlow(params=_parameters(args), key_scheme=args.key_scheme)
    component = flow.obfuscate(
        source, args.top, locking_key=_locking_key(args), name=args.source.stem
    )
    out_dir: Path = args.output
    out_dir.mkdir(parents=True, exist_ok=True)

    rtl_path = out_dir / f"{args.top}_obfuscated.v"
    rtl_path.write_text(emit_verilog(component.design))

    key_path = out_dir / f"{args.top}.lockingkey"
    key_path.write_text(f"{component.locking_key.bits:064x}\n")

    area = estimate_area(component.design)
    timing = estimate_timing(component.design)
    manifest = {
        "top": args.top,
        "working_key_bits": component.working_key_bits,
        "locking_key_bits": component.locking_key.width,
        "key_scheme": args.key_scheme,
        "obfuscated_constants": len(component.design.obfuscated_constants),
        "masked_branches": len(component.design.masked_branches),
        "variant_blocks": len(component.design.block_variants),
        "area_gates": round(area.total, 1),
        "frequency_mhz": round(timing.frequency_mhz, 1),
        "states": component.design.controller.n_states,
    }
    manifest_path = out_dir / f"{args.top}_manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")

    print(f"wrote {rtl_path}")
    print(f"wrote {key_path}  (store in tamper-proof memory!)")
    print(f"wrote {manifest_path}")
    print(
        f"W = {component.working_key_bits} bits, "
        f"area {area.total:.0f} gates, {timing.frequency_mhz:.0f} MHz"
    )
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    flow = TaoFlow(params=_parameters(args))
    design = flow.synthesize_baseline(source, args.top, name=args.source.stem)
    out_dir: Path = args.output
    out_dir.mkdir(parents=True, exist_ok=True)
    rtl_path = out_dir / f"{args.top}_baseline.v"
    rtl_path.write_text(emit_verilog(design))
    area = estimate_area(design)
    timing = estimate_timing(design)
    print(f"wrote {rtl_path}")
    print(f"area {area.total:.0f} gates, {timing.frequency_mhz:.0f} MHz")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.evaluation import format_table1, generate_table1

    print(format_table1(generate_table1()))
    return 0


def cmd_figure6(args: argparse.Namespace) -> int:
    from repro.evaluation import format_figure6, generate_figure6

    print(format_figure6(generate_figure6()))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.evaluation import format_validation, validate_benchmark
    from repro.evaluation.validation import ValidationSummary

    report = validate_benchmark(args.benchmark, n_keys=args.keys)
    summary = ValidationSummary(reports={args.benchmark: report})
    print(format_validation(summary))
    return 0 if report.correct_key_ok and report.wrong_keys_all_corrupt else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAO (DAC 2018) algorithm-level obfuscation reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="print key apportionment")
    _add_flow_arguments(analyze)
    analyze.set_defaults(func=cmd_analyze)

    obfuscate = subparsers.add_parser("obfuscate", help="run the TAO flow")
    _add_flow_arguments(obfuscate)
    obfuscate.add_argument("-o", "--output", type=Path, default=Path("out"))
    obfuscate.set_defaults(func=cmd_obfuscate)

    baseline = subparsers.add_parser("baseline", help="unobfuscated HLS only")
    _add_flow_arguments(baseline)
    baseline.add_argument("-o", "--output", type=Path, default=Path("out"))
    baseline.set_defaults(func=cmd_baseline)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1")
    table1.set_defaults(func=cmd_table1)

    figure6 = subparsers.add_parser("figure6", help="regenerate Figure 6")
    figure6.set_defaults(func=cmd_figure6)

    validate = subparsers.add_parser("validate", help="key-validation campaign")
    validate.add_argument("--benchmark", default="sobel")
    validate.add_argument("--keys", type=int, default=10)
    validate.set_defaults(func=cmd_validate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

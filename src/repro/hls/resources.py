"""Functional-unit resource library and technology cost model.

This module plays the role of the SAED 32 nm generic library + Design
Compiler characterization used in the paper.  Areas are expressed in
NAND2-equivalent gates and delays in nanoseconds; the constants below
are calibrated to textbook gate counts for a generic 32 nm standard
cell library.  Absolute values are approximate — the reproduction
relies on *relative* overheads, which these structural models capture.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.instructions import Opcode


class FUKind(enum.Enum):
    """Classes of datapath functional units."""

    ADDSUB = "addsub"
    MUL = "mul"
    DIV = "div"
    SHIFT = "shift"
    LOGIC = "logic"
    CMP = "cmp"

    def __str__(self) -> str:
        return self.value


#: Opcode -> functional-unit kind executing it (None = no FU needed).
OPCODE_FU_KIND: dict[Opcode, Optional[FUKind]] = {
    Opcode.ADD: FUKind.ADDSUB,
    Opcode.SUB: FUKind.ADDSUB,
    Opcode.NEG: FUKind.ADDSUB,
    Opcode.MUL: FUKind.MUL,
    Opcode.DIV: FUKind.DIV,
    Opcode.REM: FUKind.DIV,
    Opcode.SHL: FUKind.SHIFT,
    Opcode.SHR: FUKind.SHIFT,
    Opcode.AND: FUKind.LOGIC,
    Opcode.OR: FUKind.LOGIC,
    Opcode.XOR: FUKind.LOGIC,
    Opcode.NOT: FUKind.LOGIC,
    Opcode.EQ: FUKind.CMP,
    Opcode.NE: FUKind.CMP,
    Opcode.LT: FUKind.CMP,
    Opcode.LE: FUKind.CMP,
    Opcode.GT: FUKind.CMP,
    Opcode.GE: FUKind.CMP,
    Opcode.MOV: None,
    Opcode.LOAD: None,
    Opcode.STORE: None,
}


def fu_kind_for(opcode: Opcode) -> Optional[FUKind]:
    """Functional-unit kind for ``opcode`` (None for moves/memory)."""
    return OPCODE_FU_KIND.get(opcode)


def _log2(n: int) -> float:
    return math.log2(max(2, n))


# ----------------------------------------------------------------------
# Area model (NAND2-equivalent gates)
# ----------------------------------------------------------------------
def fu_area(kind: FUKind, width: int) -> float:
    """Area of one functional unit of ``kind`` at ``width`` bits."""
    w = max(1, width)
    if kind is FUKind.ADDSUB:
        return 9.0 * w  # CLA adder/subtractor
    if kind is FUKind.MUL:
        return 6.0 * w * w  # array multiplier
    if kind is FUKind.DIV:
        return 11.0 * w * w  # restoring divider (combinational)
    if kind is FUKind.SHIFT:
        return 4.0 * w * math.ceil(_log2(w))  # barrel shifter
    if kind is FUKind.LOGIC:
        return 3.5 * w  # and/or/xor/not with op select
    if kind is FUKind.CMP:
        return 4.5 * w  # magnitude comparator
    raise ValueError(f"unknown FU kind {kind}")  # pragma: no cover


def merged_fu_area(kinds_and_ops: set[Opcode], width: int) -> float:
    """Area of an FU supporting several operation classes.

    A multi-function ALU shares structure: its area is the largest
    member plus a fraction of the remaining classes (datapath merging
    reuses adders for sub/neg, xor trees for logic, etc.) plus a
    function-select decoder.
    """
    kinds = {fu_kind_for(op) for op in kinds_and_ops}
    kinds.discard(None)
    if not kinds:
        return 0.0
    areas = sorted((fu_area(k, width) for k in kinds), reverse=True)  # type: ignore[arg-type]
    area = areas[0] + 0.35 * sum(areas[1:])
    if len(kinds) > 1:
        area += 1.5 * width  # function-select steering
    return area


def mux_area(n_inputs: int, width: int) -> float:
    """Area of an ``n_inputs``-to-1 multiplexer of ``width`` bits."""
    if n_inputs <= 1:
        return 0.0
    return 3.3 * (n_inputs - 1) * max(1, width)


def register_area(width: int) -> float:
    """Area of a ``width``-bit register (DFF bank)."""
    return 7.0 * max(1, width)


def xor_area(width: int) -> float:
    """Area of a ``width``-bit XOR gate bank (key unmasking)."""
    return 3.0 * max(1, width)


def memory_area(bits: int) -> float:
    """Area of an on-chip RAM/ROM macro storing ``bits`` bits."""
    if bits <= 0:
        return 0.0
    return 0.35 * bits + 60.0  # bit array + decoder/sense overhead


def fsm_area(n_states: int, n_transitions: int, n_commands: int) -> float:
    """Controller area: state register + next-state and output logic."""
    state_bits = math.ceil(_log2(max(2, n_states)))
    return (
        register_area(state_bits)
        + 10.0 * n_states
        + 3.0 * n_transitions
        + 1.5 * n_commands
    )


# ----------------------------------------------------------------------
# Timing model (nanoseconds, 32 nm-class)
# ----------------------------------------------------------------------
#: Register clock-to-Q plus setup, charged once per register-to-register path.
REGISTER_OVERHEAD_NS = 0.20
#: Extra next-state logic depth per controller decision level.
FSM_LOGIC_NS = 0.25
#: Delay of one XOR level (key unmasking).
XOR_DELAY_NS = 0.035


def fu_delay(kind: FUKind, width: int) -> float:
    """Combinational delay through one functional unit."""
    w = max(1, width)
    if kind is FUKind.ADDSUB:
        return 0.20 + 0.080 * _log2(w)
    if kind is FUKind.MUL:
        return 0.40 + 0.180 * _log2(w)
    if kind is FUKind.DIV:
        return 0.80 + 0.300 * _log2(w)
    if kind is FUKind.SHIFT:
        return 0.12 + 0.055 * _log2(w)
    if kind is FUKind.LOGIC:
        return 0.10 + 0.010 * _log2(w)
    if kind is FUKind.CMP:
        return 0.18 + 0.060 * _log2(w)
    raise ValueError(f"unknown FU kind {kind}")  # pragma: no cover


def opcode_delay(opcode: Opcode, width: int) -> float:
    """Delay of the FU class executing ``opcode`` (0 for moves)."""
    kind = fu_kind_for(opcode)
    if kind is None:
        return 0.05  # register-to-register move path
    return fu_delay(kind, width)


def mux_delay(n_inputs: int) -> float:
    """Delay through an n:1 mux tree."""
    if n_inputs <= 1:
        return 0.0
    return 0.040 * math.ceil(_log2(n_inputs))


def memory_access_delay() -> float:
    """RAM read path (address decode + bitline + sense)."""
    return 0.45


@dataclass
class ResourceConstraints:
    """Per-kind limits for resource-constrained list scheduling.

    ``None`` means unconstrained.  ``memory_ports`` limits concurrent
    accesses to any single array per cycle; with
    ``shared_memory_port=True`` it instead caps the *total* array
    accesses per cycle — all arrays behind one shared memory subsystem
    (the ``mem-tight`` campaign budget), which serializes loads/stores
    that a per-array port model would overlap.
    """

    limits: dict[FUKind, Optional[int]] = field(
        default_factory=lambda: {
            FUKind.ADDSUB: 3,
            FUKind.MUL: 2,
            FUKind.DIV: 1,
            FUKind.SHIFT: 2,
            FUKind.LOGIC: 3,
            FUKind.CMP: 2,
        }
    )
    memory_ports: int = 1
    shared_memory_port: bool = False

    def limit(self, kind: FUKind) -> Optional[int]:
        return self.limits.get(kind)

"""Command-line interface for the TAO reproduction.

Usage (after ``pip install -e .``)::

    python -m repro obfuscate design.c --top kernel -o out/
    python -m repro analyze design.c --top kernel
    python -m repro baseline design.c --top kernel -o out/
    python -m repro table1
    python -m repro figure6
    python -m repro validate --benchmark sobel --keys 20
    python -m repro campaign --benchmarks all --keys 20 --jobs 4 -o out.json
    python -m repro list [kind] [--json]

``obfuscate`` writes the obfuscated Verilog, the locking key, and a
JSON key manifest; ``analyze`` prints the key apportionment (Eq. 1)
without synthesizing; ``campaign`` runs the resumable validation
service over benchmark × parameter-config × key-scheme ×
resource-budget × pipeline units (repeat ``--config`` /
``--key-scheme`` / ``--budget`` / ``--pipeline`` to sweep each axis)
and emits the unified ``repro.campaign/5`` JSON schema with per-stage
``StageReport`` blocks, per-unit ``status``/``attempts``, and
structured per-attack blocks (consumed by
``repro.evaluation.report``).  The command is a thin veneer over
the stable :mod:`repro.api` (``plan_campaign`` → ``execute_plan``
under an ``ExecutionOptions`` bundle).  ``--pipeline`` takes a
FlowSpec preset name (``full``, ``constants``, ...) or a
comma-separated stage list (``constants,branches``); the default
``params`` derives stages from each config's parameter booleans.
``--cache-dir`` (or
``$REPRO_CACHE_DIR``) layers a persistent content-addressed cache
under the in-process ones so golden runs and compilations are shared
across worker processes and across invocations; ``--cache-clear``
empties it first and ``--cache-stats`` reports the per-tier split.
``--engine`` (or ``$REPRO_SIM_ENGINE``) selects the FSMD simulation
engine: ``compiled`` (default — designs are lowered once and key
trials reuse the plan) or ``interp`` (the reference interpreter);
campaign JSON is byte-identical either way.  ``--checkpoint-dir``
persists one atomic record per completed unit and ``--resume`` skips
those units on a re-run (byte-identical final JSON);
``--unit-timeout`` / ``--max-retries`` bound hung or crashing units,
which degrade to explicit ``failed`` records instead of aborting the
sweep.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.rtl import emit_verilog, estimate_area, estimate_timing
from repro.tao import LockingKey, ObfuscationParameters, TaoFlow


def _add_flow_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", type=Path, help="C-subset source file")
    parser.add_argument("--top", required=True, help="top-level function name")
    parser.add_argument(
        "--constant-width", type=int, default=32, help="C: bits per constant"
    )
    parser.add_argument(
        "--block-bits", type=int, default=4, help="B_i: key bits per basic block"
    )
    parser.add_argument(
        "--no-constants", action="store_true", help="disable constant obfuscation"
    )
    parser.add_argument(
        "--no-branches", action="store_true", help="disable branch masking"
    )
    parser.add_argument(
        "--no-dfg", action="store_true", help="disable DFG variants"
    )
    parser.add_argument(
        "--pipeline",
        help="obfuscation pipeline: FlowSpec preset name or comma-"
        "separated stage list (overrides the --no-* stage toggles)",
    )
    parser.add_argument(
        "--key-scheme",
        default="replication",
        help="working-key management scheme (paper §3.4); "
        "see 'repro list key-scheme'",
    )
    parser.add_argument(
        "--locking-key",
        help="hex locking key (256-bit); random when omitted",
    )


def _parameters(args: argparse.Namespace) -> ObfuscationParameters:
    return ObfuscationParameters(
        constant_width=args.constant_width,
        block_bits=args.block_bits,
        obfuscate_constants=not args.no_constants,
        obfuscate_branches=not args.no_branches,
        obfuscate_dfg=not args.no_dfg,
    )


def _locking_key(args: argparse.Namespace) -> Optional[LockingKey]:
    if args.locking_key:
        return LockingKey(bits=int(args.locking_key, 16), width=256)
    return None


def _check_capabilities(kind: str, names: Sequence[str]) -> Optional[str]:
    """Resolve each name through the capability registry (plugins
    loaded); returns the uniform error message, or ``None`` if all
    resolve."""
    from repro.registry import REGISTRY, UnknownCapabilityError

    REGISTRY.load_plugins()
    for name in names:
        try:
            REGISTRY.get(kind, name)
        except UnknownCapabilityError as error:
            return str(error)
    return None


def _flow_pipeline(args: argparse.Namespace, params: ObfuscationParameters):
    """The FlowSpec for a flow command: ``--pipeline``, else the stage
    toggles mapped through the explicit (warning-free) shim.  Returns
    ``None`` after printing a diagnostic for an invalid pipeline."""
    from repro.tao import FlowSpec, resolve_pipeline

    if not getattr(args, "pipeline", None):
        return FlowSpec.from_parameters(params)
    try:
        return resolve_pipeline(args.pipeline)
    except ValueError as error:
        print(f"--pipeline {args.pipeline}: {error}", file=sys.stderr)
        return None


def cmd_analyze(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    params = _parameters(args)
    pipeline = _flow_pipeline(args, params)
    if pipeline is None:
        return 2
    flow = TaoFlow(params=params, pipeline=pipeline)
    module = flow.compile_front_end(source, args.source.stem)
    apportionment = flow.analyze(module, args.top)
    print(f"function        : {args.top}")
    print(f"basic blocks    : {apportionment.num_blocks}")
    print(f"cond. branches  : {apportionment.num_branches}")
    print(f"constants       : {apportionment.num_constants}")
    print(
        f"working key W   : {apportionment.working_key_bits} bits "
        f"(Eq. 1: {apportionment.num_branches} + "
        f"{apportionment.num_constants} x {args.constant_width} + "
        f"{apportionment.num_blocks} x {args.block_bits})"
    )
    return 0


def cmd_obfuscate(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    params = _parameters(args)
    pipeline = _flow_pipeline(args, params)
    if pipeline is None:
        return 2
    scheme_error = _check_capabilities("key-scheme", [args.key_scheme])
    if scheme_error:
        print(scheme_error, file=sys.stderr)
        return 2
    flow = TaoFlow(params=params, key_scheme=args.key_scheme, pipeline=pipeline)
    component = flow.obfuscate(
        source, args.top, locking_key=_locking_key(args), name=args.source.stem
    )
    out_dir: Path = args.output
    out_dir.mkdir(parents=True, exist_ok=True)

    rtl_path = out_dir / f"{args.top}_obfuscated.v"
    rtl_path.write_text(emit_verilog(component.design))

    key_path = out_dir / f"{args.top}.lockingkey"
    key_path.write_text(f"{component.locking_key.bits:064x}\n")

    area = estimate_area(component.design)
    timing = estimate_timing(component.design)
    manifest = {
        "top": args.top,
        "working_key_bits": component.working_key_bits,
        "locking_key_bits": component.locking_key.width,
        "key_scheme": args.key_scheme,
        "pipeline": list(component.flow_spec.stages),
        "stages": [r.to_dict() for r in component.stage_reports],
        "obfuscated_constants": len(component.design.obfuscated_constants),
        "masked_branches": len(component.design.masked_branches),
        "variant_blocks": len(component.design.block_variants),
        "area_gates": round(area.total, 1),
        "frequency_mhz": round(timing.frequency_mhz, 1),
        "states": component.design.controller.n_states,
    }
    manifest_path = out_dir / f"{args.top}_manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")

    print(f"wrote {rtl_path}")
    print(f"wrote {key_path}  (store in tamper-proof memory!)")
    print(f"wrote {manifest_path}")
    print(
        f"W = {component.working_key_bits} bits, "
        f"area {area.total:.0f} gates, {timing.frequency_mhz:.0f} MHz"
    )
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    source = args.source.read_text()
    params = _parameters(args)
    # The baseline synthesizes no obfuscation stages, but a typo'd
    # --pipeline must still be rejected (the flow flags are shared
    # across subcommands; silently ignoring an invalid one misleads).
    if _flow_pipeline(args, params) is None:
        return 2
    flow = TaoFlow(params=params)
    design = flow.synthesize_baseline(source, args.top, name=args.source.stem)
    out_dir: Path = args.output
    out_dir.mkdir(parents=True, exist_ok=True)
    rtl_path = out_dir / f"{args.top}_baseline.v"
    rtl_path.write_text(emit_verilog(design))
    area = estimate_area(design)
    timing = estimate_timing(design)
    print(f"wrote {rtl_path}")
    print(f"area {area.total:.0f} gates, {timing.frequency_mhz:.0f} MHz")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.evaluation import format_table1, generate_table1

    print(format_table1(generate_table1()))
    return 0


def cmd_figure6(args: argparse.Namespace) -> int:
    from repro.evaluation import format_figure6, generate_figure6

    print(format_figure6(generate_figure6()))
    return 0


def _campaign_size_error(keys: int, workloads: int = 1) -> Optional[str]:
    """Usage-level mirror of ``validate_component``'s anti-vacuity checks."""
    if keys < 2:
        return f"--keys {keys}: need the correct key plus at least one wrong key"
    if workloads < 1:
        return f"--workloads {workloads}: need at least one workload"
    return None


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.benchsuite import benchmark_names
    from repro.evaluation import format_validation, validate_benchmark
    from repro.evaluation.validation import ValidationSummary

    error = _campaign_size_error(args.keys)
    if error:
        print(error, file=sys.stderr)
        return 2
    known = benchmark_names()
    if args.benchmark not in known:
        print(f"unknown benchmark: {args.benchmark}", file=sys.stderr)
        print(f"available: {', '.join(known)}", file=sys.stderr)
        return 2
    report = validate_benchmark(args.benchmark, n_keys=args.keys)
    summary = ValidationSummary(reports={args.benchmark: report})
    print(format_validation(summary))
    return 0 if report.correct_key_ok and report.wrong_keys_all_corrupt else 1


def cmd_list(args: argparse.Namespace) -> int:
    from repro.registry import (
        REGISTRY,
        UnknownCapabilityError,
        describe_capabilities,
    )

    try:
        listing = describe_capabilities(args.kind)
    except UnknownCapabilityError as error:
        print(error, file=sys.stderr)
        return 2
    api_info = None
    if args.kind is None:
        # Full listings also advertise the stable import surface, so
        # plugin authors discover it from the same provenance command.
        from repro.api import __all__ as api_exports

        api_info = {"module": "repro.api", "exports": list(api_exports)}
    if args.json:
        payload: dict = dict(listing)
        if api_info is not None:
            payload["api"] = api_info
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    first = True
    for kind, entries in listing.items():
        if not first:
            print()
        first = False
        print(f"{kind} — {REGISTRY.label(kind)}s ({len(entries)}):")
        if not entries:
            print("  (none registered)")
            continue
        name_w = max(len(e["name"]) for e in entries)
        prov_w = max(len(e["provenance"]) for e in entries)
        for entry in entries:
            line = (
                f"  {entry['name']:<{name_w}}  "
                f"[{entry['provenance']:<{prov_w}}]"
            )
            if entry["description"]:
                line += f"  {entry['description']}"
            print(line)
    if api_info is not None:
        print()
        print(
            f"stable API: {api_info['module']} — "
            + ", ".join(api_info["exports"])
        )
    return 0


def _campaign_progress(event: str, info: dict) -> None:
    """Surface executor retry/failure telemetry on stderr as it happens
    (the summary line at the end reports the totals)."""
    labels = "/".join(str(part) for part in info.get("unit", ()))
    if event == "unit-retry":
        print(
            f"[retry] {labels}: attempt {info['attempt']} failed "
            f"({info['error']}); retrying in {info['backoff_seconds']:.1f}s",
            file=sys.stderr,
        )
    elif event == "unit-failed":
        print(
            f"[failed] {labels}: gave up after {info['attempts']} "
            f"attempt(s): {info['error']}",
            file=sys.stderr,
        )


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.api import ExecutionOptions, execute_plan, plan_campaign
    from repro.benchsuite import benchmark_names
    from repro.evaluation.report import format_campaign
    from repro.runtime.cache import CACHE_DIR_ENV, configure_disk_cache
    from repro.runtime.campaign import (
        PIPELINE_FROM_PARAMS,
        CampaignSpec,
        resolve_jobs,
    )
    from repro.tao.pipeline import PIPELINE_PRESETS, resolve_pipeline

    error = _campaign_size_error(args.keys, args.workloads)
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.jobs is not None and args.jobs < 0:
        print(f"--jobs {args.jobs}: cannot be negative", file=sys.stderr)
        return 2
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        print(
            f"--unit-timeout {args.unit_timeout}: must be positive seconds",
            file=sys.stderr,
        )
        return 2
    if args.max_retries < 0:
        print(
            f"--max-retries {args.max_retries}: cannot be negative",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    from repro.sim import resolve_engine

    try:
        # Fail fast on a typo'd $REPRO_SIM_ENGINE instead of deep in
        # the campaign engine (args.engine itself is argparse-checked).
        resolve_engine(args.engine)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    configs = tuple(dict.fromkeys(args.config or ["default"]))
    config_error = _check_capabilities("config", configs)
    if config_error:
        print(config_error, file=sys.stderr)
        return 2
    key_schemes = tuple(dict.fromkeys(args.key_scheme or ["replication"]))
    scheme_error = _check_capabilities("key-scheme", key_schemes)
    if scheme_error:
        print(scheme_error, file=sys.stderr)
        return 2
    pipelines = tuple(dict.fromkeys(args.pipeline or [PIPELINE_FROM_PARAMS]))
    for label in pipelines:
        if label == PIPELINE_FROM_PARAMS:
            continue
        try:
            resolve_pipeline(label)
        except ValueError as error:
            print(f"--pipeline {label}: {error}", file=sys.stderr)
            print(
                f"available: {PIPELINE_FROM_PARAMS} (config booleans), "
                f"presets {', '.join(PIPELINE_PRESETS)}, or a comma-"
                "separated stage list",
                file=sys.stderr,
            )
            return 2
    budgets = tuple(dict.fromkeys(args.budget or ["default"]))
    budget_error = _check_capabilities("budget", budgets)
    if budget_error:
        print(budget_error, file=sys.stderr)
        return 2
    attacks = tuple(dict.fromkeys(args.attack or []))
    attack_error = _check_capabilities("attack", attacks)
    if attack_error:
        print(attack_error, file=sys.stderr)
        return 2
    known = benchmark_names()
    if args.benchmarks.strip().lower() == "all":
        selected = known
    else:
        selected = list(
            dict.fromkeys(
                name.strip() for name in args.benchmarks.split(",") if name.strip()
            )
        )
        unknown = [name for name in selected if name not in known]
        if unknown or not selected:
            problem = (
                f"unknown benchmark(s): {', '.join(unknown)}"
                if unknown
                else f"no benchmarks selected from {args.benchmarks!r}"
            )
            print(problem, file=sys.stderr)
            print(f"available: {', '.join(known)}", file=sys.stderr)
            return 2
    if args.key_batch_lanes is not None and args.key_batch_lanes < 1:
        print(
            f"--key-batch-lanes {args.key_batch_lanes}: "
            "need at least one lane per batch",
            file=sys.stderr,
        )
        return 2
    cache_dir = args.cache_dir or os.environ.get(CACHE_DIR_ENV)
    if args.cache_clear and not cache_dir:
        print(
            f"--cache-clear needs --cache-dir or ${CACHE_DIR_ENV}",
            file=sys.stderr,
        )
        return 2
    backend = configure_disk_cache(cache_dir) if cache_dir else None
    if args.cache_clear and backend is not None:
        print(f"cleared {backend.clear()} cached entr(ies) from {backend.root}")
    spec = CampaignSpec(
        benchmarks=tuple(selected),
        configs=configs,
        key_schemes=key_schemes,
        resource_budgets=budgets,
        pipelines=pipelines,
        n_keys=args.keys,
        n_workloads=args.workloads,
        seed=args.seed,
        attacks=attacks,
    )
    jobs = resolve_jobs(args.jobs)
    options = ExecutionOptions(
        jobs=jobs,
        engine=args.engine,
        cache_dir=str(cache_dir) if cache_dir else None,
        collect_cache_stats=args.cache_stats,
        checkpoint_dir=(
            str(args.checkpoint_dir) if args.checkpoint_dir else None
        ),
        resume=args.resume,
        unit_timeout=args.unit_timeout,
        max_retries=args.max_retries,
        key_batch_lanes=args.key_batch_lanes,
        progress=_campaign_progress,
    )
    result = execute_plan(plan_campaign(spec), options)
    if args.output is not None:
        path = result.write(args.output, include_trials=not args.no_trials)
        print(f"wrote {path}")
    print(format_campaign(result))
    telemetry = result.execution or {}
    print(
        f"elapsed {result.elapsed_seconds:.1f}s ({jobs} worker(s)): "
        f"{telemetry.get('units_completed', len(result.units))}/"
        f"{telemetry.get('units_total', len(result.units))} units ok, "
        f"{telemetry.get('units_failed', 0)} failed, "
        f"{telemetry.get('retries', 0)} retried, "
        f"{telemetry.get('units_resumed', 0)} resumed"
    )
    passed = all(
        unit.ok
        and unit.report.correct_key_ok
        and unit.report.wrong_keys_all_corrupt
        for unit in result.units
    )
    return 0 if passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAO (DAC 2018) algorithm-level obfuscation reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="print key apportionment")
    _add_flow_arguments(analyze)
    analyze.set_defaults(func=cmd_analyze)

    obfuscate = subparsers.add_parser("obfuscate", help="run the TAO flow")
    _add_flow_arguments(obfuscate)
    obfuscate.add_argument("-o", "--output", type=Path, default=Path("out"))
    obfuscate.set_defaults(func=cmd_obfuscate)

    baseline = subparsers.add_parser("baseline", help="unobfuscated HLS only")
    _add_flow_arguments(baseline)
    baseline.add_argument("-o", "--output", type=Path, default=Path("out"))
    baseline.set_defaults(func=cmd_baseline)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1")
    table1.set_defaults(func=cmd_table1)

    figure6 = subparsers.add_parser("figure6", help="regenerate Figure 6")
    figure6.set_defaults(func=cmd_figure6)

    validate = subparsers.add_parser("validate", help="key-validation campaign")
    validate.add_argument("--benchmark", default="sobel")
    validate.add_argument("--keys", type=int, default=10)
    validate.set_defaults(func=cmd_validate)

    list_cmd = subparsers.add_parser(
        "list",
        help="enumerate registered capabilities (benchmarks, stages, "
        "key schemes, budgets, engines, attacks, ...)",
    )
    list_cmd.add_argument(
        "kind",
        nargs="?",
        default=None,
        help="capability kind to list (default: every kind); one of: "
        "benchmark, stage, pipeline-preset, config, key-scheme, "
        "budget, engine, attack",
    )
    list_cmd.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (per-kind name/description/provenance)",
    )
    list_cmd.set_defaults(func=cmd_list)

    campaign = subparsers.add_parser(
        "campaign",
        help="parallel validation-campaign engine (JSON output)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "environment:\n"
            "  REPRO_JOBS        default worker count for --jobs 0/omitted\n"
            "  REPRO_CACHE_DIR   default --cache-dir: a persistent,\n"
            "                    content-addressed cache shared across\n"
            "                    processes and runs\n"
            "  REPRO_SIM_ENGINE  default --engine\n"
            "                    (compiled | interp | codegen)\n"
            "  REPRO_KEY_BATCH_LANES\n"
            "                    default --key-batch-lanes (keys per\n"
            "                    simulation batch; throughput only,\n"
            "                    never results)\n"
            "\n"
            "simulation engines (--engine / REPRO_SIM_ENGINE):\n"
            "  The execution stack is a three-tier seam (repro.sim):\n"
            "  'interp' is the reference interpreter, kept as the oracle\n"
            "  for differential tests.  'compiled' (default) lowers each\n"
            "  FSMD design once into a slot-indexed closure plan\n"
            "  (repro.sim.compiled): operand readers, opcode dispatch,\n"
            "  per-state op lists and controller transitions are resolved\n"
            "  at compile time, and the plan is specialized per key by a\n"
            "  cheap bind_key step — one compilation serves every key\n"
            "  trial of a campaign.  'codegen' (repro.sim.codegen) goes\n"
            "  one tier further: it exec()-generates straight-line Python\n"
            "  for the whole FSM and vectorizes registers/memories into\n"
            "  lane-indexed storage, so a single bind_keys(keys) call\n"
            "  specializes the plan for a whole key batch and the\n"
            "  generated sweep retires lanes independently (campaign\n"
            "  workers receive key batches, not single keys, on this\n"
            "  path).  Determinism contract: all three engines produce\n"
            "  field-identical simulation results, so campaign JSON is\n"
            "  byte-identical regardless of engine or batch layout (the\n"
            "  engine, like --jobs, never enters the serialized spec);\n"
            "  CI gates on scripts/check_engine_parity.py across all\n"
            "  three tiers and scripts/bench_sim.py tracks the\n"
            "  throughput gaps.\n"
            "\n"
            "pipelines (--pipeline, repeatable -> fifth sweep axis):\n"
            "  The obfuscation flow is a pipeline of registered stages\n"
            "  (repro.tao.pipeline: constants, branches, dfg, roms;\n"
            "  @register_stage plugs in new ones).  --pipeline takes a\n"
            "  FlowSpec preset (full, constants, branches, dfg,\n"
            "  full-rom) or a comma-separated stage list such as\n"
            "  'constants,branches' (frontend stages before\n"
            "  post-schedule stages).  The default 'params' derives\n"
            "  the stage set from each --config's parameter booleans\n"
            "  (the legacy behaviour); any other pipeline overrides\n"
            "  the config's stage toggles, and key apportionment\n"
            "  follows the stages that actually run.  Each unit's JSON\n"
            "  records its pipeline label and per-stage StageReport\n"
            "  blocks (ops touched, key bits consumed) in the\n"
            "  repro.campaign/5 schema; v1-v4 documents upgrade on\n"
            "  load.\n"
            "\n"
            "resumable execution (--checkpoint-dir / --resume /\n"
            "--unit-timeout / --max-retries):\n"
            "  The campaign engine is a plan/execute service\n"
            "  (repro.api.plan_campaign -> execute_plan): the plan\n"
            "  enumerates units with deterministic content-addressed\n"
            "  unit ids, and the executor runs each to an explicit\n"
            "  terminal state.  --checkpoint-dir writes one atomic\n"
            "  JSON record per completed unit, namespaced by a spec\n"
            "  fingerprint (spec + schema version; execution knobs\n"
            "  like --jobs/--engine are excluded), so a changed spec\n"
            "  can never resume stale units.  --resume skips the\n"
            "  checkpointed units of the same spec and reassembles a\n"
            "  final JSON byte-identical to an uninterrupted run —\n"
            "  kill a campaign (even SIGKILL) and re-run with --resume\n"
            "  to keep every completed unit; CI gates this with\n"
            "  scripts/check_resume.py.  --unit-timeout SECONDS kills\n"
            "  a unit attempt that hangs (the worker's whole process\n"
            "  group, including nested key workers, is replaced);\n"
            "  crashed or timed-out attempts are retried up to\n"
            "  --max-retries times (default 1) with exponential\n"
            "  backoff.  A unit that exhausts its attempts is recorded\n"
            "  as status='failed' (with its error and attempt count,\n"
            "  schema v4) and the rest of the campaign completes; the\n"
            "  exit code is then non-zero and failed units re-execute\n"
            "  on the next --resume.  Progress telemetry (units done/\n"
            "  failed/retried/resumed, wall time) prints on completion\n"
            "  and retries/failures stream to stderr as they happen.\n"
            "\n"
            "persistent cache:\n"
            "  --cache-dir layers an on-disk L2 under the in-memory caches:\n"
            "  golden interpreter runs and front-end compilations are keyed\n"
            "  on content fingerprints, written atomically, and shared by\n"
            "  every worker process, concurrent campaign, and later run.\n"
            "  A warm cache reports zero golden misses via --cache-stats\n"
            "  while the JSON result fields stay byte-identical to a cold\n"
            "  run.  The resolved pipeline never enters the golden or\n"
            "  front-end cache keys: the front end caches the\n"
            "  pre-obfuscation module and golden fingerprints\n"
            "  canonicalize obfuscated constants to their plaintext, so\n"
            "  every pipeline of one benchmark shares a single golden\n"
            "  run per workload (sweeping --pipeline rotates no keys).\n"
            "  CI persists the directory with actions/cache keyed on\n"
            "  the hash of src/repro/benchsuite/ (content addressing makes\n"
            "  stale entries harmless: they are simply never looked up).\n"
            "\n"
            "plugins and the capability registry:\n"
            "  Every sweepable axis resolves through one typed registry\n"
            "  (repro.registry.CapabilityRegistry): benchmarks, stages,\n"
            "  pipeline presets, configs, key schemes, budgets, engines\n"
            "  and attacks.  'repro list [kind] [--json]' enumerates the\n"
            "  registered entries with description and provenance\n"
            "  (builtin vs plugin:<name>).  Third-party packages extend\n"
            "  any axis without touching this repository: expose an\n"
            "  entry point in group 'repro.plugins' resolving to a\n"
            "  callable(registry) (or a module whose import registers)\n"
            "  and call registry.register(kind, name, value,\n"
            "  description=...).  Plugins load lazily, exactly once per\n"
            "  process, only at name-resolution time; a broken plugin\n"
            "  degrades to a RuntimeWarning and the campaign keeps\n"
            "  running on the remaining capabilities.  Registered\n"
            "  plugin capabilities sweep as campaign axes (--config /\n"
            "  --key-scheme / --budget / --pipeline / --attack /\n"
            "  --engine / --benchmarks) and render in reports like\n"
            "  builtins.  Registration order never enters seeds or\n"
            "  cache keys, so installing a plugin perturbs no existing\n"
            "  campaign bytes.\n"
            "\n"
            "attacks (--attack, repeatable):\n"
            "  Registered attacks (repro.attack; 'repro list attack')\n"
            "  run against every unit's obfuscated component after key\n"
            "  validation, each on its own derived seed stream, and\n"
            "  embed an 'attacks' block in the unit's JSON.  Omitting\n"
            "  --attack keeps the document byte-identical to\n"
            "  attack-free output.  Every attack — builtin or plugin —\n"
            "  serializes one validated shape (schema v5):\n"
            "    {\"name\": ..., \"applicable\": true|false,\n"
            "     \"cost\": {\"oracle_queries\": N,\n"
            "              \"simulated_trials\": N, \"iterations\": N},\n"
            "     \"outcome\": {...attack-specific...},\n"
            "     \"reason\": \"...\"}   (only when inapplicable)\n"
            "  Cost model: 'oracle_queries' counts distinct workloads\n"
            "  sent to the activated oracle chip (the golden model's\n"
            "  outputs ARE its responses) — the scarce resource an\n"
            "  oracle-guided adversary spends; 'simulated_trials'\n"
            "  counts netlist simulations of the attacker's own fab'd\n"
            "  copies (cheap, parallel, lane-batched);  'iterations'\n"
            "  counts outer-loop rounds.  All three are deterministic\n"
            "  — wall-clock never enters the JSON.  The key-recovery\n"
            "  attackers ('oracle-guided' distinguishing-input\n"
            "  pruning, 'hill-climb' Hamming descent) and the\n"
            "  oracle-free 'resistance-curve' sweep live in\n"
            "  repro.attack next to the legacy surface analyses;\n"
            "  'oracle-guided' additionally reports its keys-\n"
            "  eliminated-per-query curve.  Results render as the\n"
            "  attack-cost table in 'repro report' / format_campaign.\n"
        ),
    )
    campaign.add_argument(
        "--benchmarks",
        default="all",
        help='comma-separated benchmark names, or "all"',
    )
    campaign.add_argument(
        "--config",
        action="append",
        help="parameter config(s) to sweep; see repro.runtime.campaign."
        "PRESET_CONFIGS (repeatable; default: default)",
    )
    campaign.add_argument("--keys", type=int, default=20)
    campaign.add_argument("--workloads", type=int, default=1)
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes; 0 or omitted = auto "
        "(REPRO_JOBS, else cpu count, max 8)",
    )
    campaign.add_argument(
        "--key-scheme",
        action="append",
        choices=("replication", "aes"),
        help="key-management scheme(s) to sweep (paper §3.4; repeatable; "
        "default: replication)",
    )
    campaign.add_argument(
        "--budget",
        action="append",
        help="resource-budget preset(s) to sweep; see "
        "repro.runtime.campaign.PRESET_BUDGETS (repeatable; default: "
        "default; incl. mul-tight and mem-tight)",
    )
    campaign.add_argument(
        "--pipeline",
        action="append",
        help="obfuscation pipeline(s) to sweep: FlowSpec preset name or "
        "comma-separated stage list (repeatable; default: params = "
        "stages from each config's parameter booleans; see the epilog)",
    )
    campaign.add_argument(
        "--attack",
        action="append",
        help="registered attack(s) to run against every unit's component "
        "(repeatable; see 'repro list attack'; results embed in each "
        "unit's JSON without perturbing seeds or keys)",
    )
    campaign.add_argument(
        "--engine",
        default=None,
        help="FSMD simulation engine (default: $REPRO_SIM_ENGINE, else "
        "compiled; see 'repro list engine'); results are "
        "engine-independent — see the epilog",
    )
    campaign.add_argument("-o", "--output", type=Path, default=None)
    campaign.add_argument(
        "--no-trials",
        action="store_true",
        help="omit per-key trial records from the JSON output",
    )
    campaign.add_argument(
        "--cache-stats",
        action="store_true",
        help="include summed cache-counter deltas in the JSON, split by "
        "tier (L1 / disk / computed), plus backend provenance; counts "
        "every trial including nested key workers (the split is "
        "process-layout-dependent)",
    )
    campaign.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persistent cross-process cache directory "
        "(default: $REPRO_CACHE_DIR; omit both for in-memory only)",
    )
    campaign.add_argument(
        "--cache-clear",
        action="store_true",
        help="clear the persistent cache before running "
        "(requires --cache-dir or $REPRO_CACHE_DIR)",
    )
    campaign.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="write one atomic JSON record per completed unit here "
        "(namespaced by spec fingerprint); enables --resume",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="skip units already checkpointed under --checkpoint-dir for "
        "this exact spec; the final JSON is byte-identical to an "
        "uninterrupted run",
    )
    campaign.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill a unit attempt (and its worker's process group) after "
        "this many wall seconds; retried per --max-retries",
    )
    campaign.add_argument(
        "--key-batch-lanes",
        type=int,
        default=None,
        metavar="N",
        help="max keys per codegen simulation batch (default: "
        "$REPRO_KEY_BATCH_LANES, else 64); a pure throughput knob — "
        "results are byte-identical for every lane setting",
    )
    campaign.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help="re-attempts per unit after a crash/timeout/error (default: "
        "1); an exhausted unit is recorded as status='failed' without "
        "aborting the campaign",
    )
    campaign.set_defaults(func=cmd_campaign)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Shared fixtures for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's tables/figures
(see DESIGN.md's per-experiment index).  The regenerated rows are
printed so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
report generator; timings from pytest-benchmark measure the cost of
each regeneration pipeline.
"""

from __future__ import annotations

import pytest

from repro.benchsuite import all_benchmarks
from repro.tao import TaoFlow


@pytest.fixture(scope="session")
def benchmark_suite():
    return all_benchmarks()


@pytest.fixture(scope="session")
def obfuscated_components():
    """Fully-obfuscated components for all five benchmarks (cached)."""
    flow = TaoFlow()
    return {
        name: flow.obfuscate(bench.source, bench.top)
        for name, bench in all_benchmarks().items()
    }


@pytest.fixture(scope="session")
def baseline_designs():
    flow = TaoFlow()
    return {
        name: flow.synthesize_baseline(bench.source, bench.top)
        for name, bench in all_benchmarks().items()
    }

"""Cycle-accurate FSMD simulation.

Substitutes for the paper's ModelSim RTL simulations (§4.1): executes
an :class:`repro.hls.design.FsmdDesign` state-by-state with a given
working key, reporting outputs, final memory contents and the cycle
count.  All three obfuscations participate:

* obfuscated constants decode as ``stored ^ key_slice``;
* masked branches evaluate ``test ^ key_bit`` against design-time
  swapped targets;
* obfuscated blocks execute the DFG variant selected by their key
  slice.

With the correct working key the simulation reproduces the golden IR
interpretation exactly (asserted throughout the test suite); wrong keys
produce "logical but incorrect execution flows" (paper §3.2.2).

Register-level fidelity: values are read from and written to *bound
registers*, so register-sharing bugs would corrupt results — this is
how the test suite validates the binding stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.hls.controller import StateId
from repro.hls.design import FsmdDesign, VariantOp
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import IntType
from repro.ir.values import ArrayValue, Constant, ObfuscatedConstant, Value
from repro.opt.constant_folding import evaluate_op


class SimulationError(Exception):
    """Raised on malformed designs or exceeded cycle budgets."""


def zero_size_memory_error(name: str) -> SimulationError:
    """The (single-sourced) error for indexing an empty memory image.

    Both engines raise this identically-worded error — the engine
    parity contract covers error behaviour too.
    """
    return SimulationError(
        f"memory {name!r} has zero size; cannot index into it"
    )


@dataclass
class SimulationResult:
    """Outcome of one FSMD run.

    Attributes:
        return_value: Value of the return register at completion (None
            for void functions or when the run timed out).
        arrays: Final contents of every memory.
        cycles: Clock cycles until the done state (or the budget).
        completed: False when the cycle budget expired first (possible
            under wrong keys that corrupt loop bounds).
        state_trace: Executed state sequence (when tracing enabled).
    """

    return_value: Optional[int]
    arrays: dict[str, list[int]]
    cycles: int
    completed: bool
    state_trace: list[str] = field(default_factory=list)


class FsmdSimulator:
    """Simulates an FSMD design for one invocation."""

    def __init__(
        self,
        design: FsmdDesign,
        max_cycles: int = 2_000_000,
        trace: bool = False,
    ) -> None:
        self.design = design
        self.max_cycles = max_cycles
        self.trace = trace
        # Per-(state, selected-variant) op lists: loops revisit the
        # same states thousands of times, and rebuilding the filtered
        # list each cycle made long runs quadratic-feeling.
        self._ops_cache: dict[tuple, list] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        args: Sequence[int] = (),
        arrays: Optional[dict[str, list[int]]] = None,
        working_key: int = 0,
    ) -> SimulationResult:
        design = self.design
        func = design.func
        registers: dict[str, int] = {r.name: 0 for r in design.binding.registers}
        memories = self._initial_memories(arrays)
        trace: list[str] = []

        # Latch scalar arguments into parameter registers.
        scalar_params = func.scalar_params()
        if len(args) != len(scalar_params):
            raise SimulationError(
                f"{func.name} expects {len(scalar_params)} scalar args, "
                f"got {len(args)}"
            )
        for param, arg in zip(scalar_params, args):
            register = design.binding.register_of.get(param)
            if register is not None:
                assert isinstance(param.type, IntType)
                registers[register.name] = param.type.wrap(arg)

        return_register_value: Optional[int] = None
        state: Optional[StateId] = design.controller.entry_state
        assert state is not None
        cycles = 0
        completed = False
        while cycles < self.max_cycles:
            cycles += 1
            if self.trace:
                trace.append(str(state))
            # Gather this state's operations (baseline or selected variant).
            ops = self._state_ops(state, working_key)
            # Phase 1: combinational reads (old register values).
            writes: list[tuple[str, int]] = []
            memory_writes: list[tuple[str, int, int]] = []
            returned: Optional[int] = None
            condition_value = 0
            for op in ops:
                outcome = self._execute_op(
                    op, registers, memories, working_key
                )
                if outcome is None:
                    continue
                kind = outcome[0]
                if kind == "write":
                    writes.append(outcome[1])
                elif kind == "memwrite":
                    memory_writes.append(outcome[1])
                elif kind == "ret":
                    returned = outcome[1]
                elif kind == "cond":
                    condition_value = outcome[1]
            # Phase 2: clock edge — commit writes.
            for name, value in writes:
                registers[name] = value
            for array_name, index, value in memory_writes:
                memory = memories[array_name]
                if not memory:
                    raise zero_size_memory_error(array_name)
                memory[index % len(memory)] = value
            if returned is not None or self._is_done(state):
                return_register_value = returned
                completed = True
                break
            # Controller: next state.
            transition = self.design.controller.transitions[state]
            if transition.condition is not None:
                condition_value = self._read_value(
                    transition.condition, registers, working_key
                )
            key_bit_value = 0
            key_bit = transition.key_bit
            if key_bit is not None:
                key_bit_value = (working_key >> key_bit) & 1
            next_state = self.design.controller.resolve_next(
                state, condition_value, key_bit_value
            )
            if next_state is None:
                completed = True
                break
            state = next_state

        return SimulationResult(
            return_value=return_register_value,
            arrays=memories,
            cycles=cycles,
            completed=completed,
            state_trace=trace,
        )

    # ------------------------------------------------------------------
    def _initial_memories(
        self, arrays: Optional[dict[str, list[int]]]
    ) -> dict[str, list[int]]:
        memories: dict[str, list[int]] = {}
        for name, memory_binding in self.design.binding.memories.items():
            array = memory_binding.array
            rom = self.design.obfuscated_roms.get(name)
            if rom is not None:
                # The fabricated image is the encrypted one; reads decode
                # through the key XOR (see _execute_op).
                memories[name] = list(rom.encrypted_image)  # type: ignore[attr-defined]
            elif arrays is not None and array.name in arrays:
                provided = list(arrays[array.name])
                if len(provided) < array.size:
                    provided += [0] * (array.size - len(provided))
                memories[name] = [
                    array.element_type.wrap(v) for v in provided[: array.size]
                ]
            elif array.initializer is not None:
                memories[name] = [
                    array.element_type.wrap(v) for v in array.initializer
                ]
            else:
                memories[name] = [0] * array.size
        return memories

    def _state_ops(self, state: StateId, working_key: int) -> list:
        """Operations executing in ``state`` under the given key.

        Memoized per (state, selected variant): the op list of a state
        is a pure function of the design and the key slice steering its
        block, so it is computed once per run instead of once per cycle.
        """
        variants = self.design.block_variants.get(state.block)
        selector = None if variants is None else variants.selector(working_key)
        key = (state, selector)
        ops = self._ops_cache.get(key)
        if ops is None:
            if variants is None:
                block_schedule = self.design.schedule.blocks[state.block]
                ops = block_schedule.instructions_at(state.step)
            else:
                ops = [
                    op
                    for op in variants.variants[selector]
                    if op.cstep == state.step
                ]
            self._ops_cache[key] = ops
        return ops

    def _is_done(self, state: StateId) -> bool:
        return self.design.controller.transitions[state].is_done

    # ------------------------------------------------------------------
    def _execute_op(
        self,
        op,
        registers: dict[str, int],
        memories: dict[str, list[int]],
        working_key: int,
    ):
        if isinstance(op, Instruction):
            opcode = op.opcode
            result = op.result
            operands = op.operands
            array_name = op.array.name if op.array is not None else None
        else:
            assert isinstance(op, VariantOp)
            opcode = op.opcode
            result = op.result
            operands = op.operands
            array_name = op.array_name

        if opcode in (Opcode.JUMP, Opcode.BRANCH):
            return None  # handled by the controller
        if opcode is Opcode.RET:
            if operands:
                return ("ret", self._read_value(operands[0], registers, working_key))
            return ("ret", 0)
        if opcode is Opcode.LOAD:
            assert array_name is not None and result is not None
            memory = memories[array_name]
            if not memory:
                raise zero_size_memory_error(array_name)
            index = self._read_value(operands[0], registers, working_key)
            value = memory[index % len(memory)]
            rom = self.design.obfuscated_roms.get(array_name)
            if rom is not None:
                element_type = self.design.func.arrays[array_name].element_type
                value = rom.decode(value, element_type, working_key)  # type: ignore[attr-defined]
            return self._register_write(result, value)
        if opcode is Opcode.STORE:
            assert array_name is not None
            index = self._read_value(operands[0], registers, working_key)
            raw = self._read_value(operands[1], registers, working_key)
            element_type = self.design.func.arrays[array_name].element_type
            return ("memwrite", (array_name, index, element_type.wrap(raw)))
        if opcode is Opcode.CALL:  # pragma: no cover - rejected by engine
            raise SimulationError("calls must be inlined before simulation")
        # Datapath op or MOV.
        assert result is not None
        result_type = result.type
        assert isinstance(result_type, IntType)
        values = [self._read_value(v, registers, working_key) for v in operands]
        types = [self._operand_type(v) for v in operands]
        computed = evaluate_op(opcode, values, types, result_type)
        if computed is None:
            raise SimulationError(f"cannot evaluate opcode {opcode}")
        return self._register_write(result, computed)

    def _register_write(self, result: Value, value: int):
        register = self.design.binding.register_of.get(result)
        if register is None:
            raise SimulationError(f"value {result} has no bound register")
        assert isinstance(result.type, IntType)
        return ("write", (register.name, result.type.wrap(value)))

    def _read_value(
        self, value: Value, registers: dict[str, int], working_key: int
    ) -> int:
        if isinstance(value, ObfuscatedConstant):
            return value.decode(working_key)
        if isinstance(value, Constant):
            return value.value
        register = self.design.binding.register_of.get(value)
        if register is None:
            raise SimulationError(f"value {value} has no bound register")
        raw = registers[register.name]
        assert isinstance(value.type, IntType)
        return value.type.wrap(raw)

    @staticmethod
    def _operand_type(value: Value) -> IntType:
        assert isinstance(value.type, IntType)
        return value.type


def simulate(
    design: FsmdDesign,
    args: Sequence[int] = (),
    arrays: Optional[dict[str, list[int]]] = None,
    working_key: int = 0,
    max_cycles: int = 2_000_000,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Run one FSMD trial on the selected engine.

    ``engine`` is ``"compiled"`` (the default: the design is lowered
    once by :mod:`repro.sim.compiled` and the plan is reused across
    calls and keys), ``"codegen"`` (Python source generated per design
    by :mod:`repro.sim.codegen`; here it runs a one-lane batch) or
    ``"interp"`` (this module's reference interpreter); ``None`` defers
    to ``$REPRO_SIM_ENGINE``.  All engines return field-identical
    :class:`SimulationResult`\\ s — the differential tests assert it.
    """
    from repro.sim.compiled import engine_driver, resolve_engine

    driver = engine_driver(resolve_engine(engine))
    return driver.run(design, args, arrays, working_key, max_cycles)


def simulate_batch(
    design: FsmdDesign,
    args: Sequence[int] = (),
    arrays: Optional[dict[str, list[int]]] = None,
    working_keys: Sequence[int] = (),
    max_cycles: int = 2_000_000,
    engine: Optional[str] = None,
) -> list[SimulationResult]:
    """Run one FSMD trial per working key; all lanes share the workload.

    The batched counterpart of :func:`simulate` and the seam the
    key-trial layers (:mod:`repro.tao.metrics`, :mod:`repro.tao.attacks`)
    ride: under the ``codegen`` engine the whole batch is bound at once
    (one :meth:`~repro.sim.codegen.CodegenDesign.bind_keys`) and swept
    through lane-vectorized storage, while ``compiled`` and ``interp``
    degrade to a scalar loop with identical results.  ``result[i]`` is
    field-identical to ``simulate(..., working_key=working_keys[i])``
    on every engine.
    """
    from repro.sim.compiled import engine_driver, resolve_engine

    resolved = resolve_engine(engine)
    driver = engine_driver(resolved)
    if driver.run_batch is not None:
        return driver.run_batch(design, args, arrays, working_keys, max_cycles)
    return [
        simulate(
            design,
            args,
            dict(arrays) if arrays else None,
            working_key=key,
            max_cycles=max_cycles,
            engine=resolved,
        )
        for key in working_keys
    ]

"""Controller synthesis: build the FSM driving the datapath.

States are (basic block, control step) pairs.  The final cstep of each
block carries the block's control transfer: an unconditional next state
(jump / fallthrough), a two-way decision on a datapath test result
(branch), or completion (ret).

TAO's branch-masking obfuscation (paper §3.3.3) rewrites the two-way
transitions: the test is XORed with a working-key bit and the
true/false target states are swapped at design time according to the
bit's correct value, so only the right key reproduces the original
control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hls.scheduling import FunctionSchedule
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.values import Value


@dataclass(frozen=True)
class StateId:
    """Identifier of one FSM state: a cstep within a block."""

    block: str
    step: int

    def __str__(self) -> str:
        return f"{self.block}@{self.step}"


@dataclass
class Transition:
    """Outgoing control of a state.

    Exactly one of the following shapes:

    * sequential: ``next_state`` set, ``condition`` None;
    * conditional: ``condition`` set with ``true_state``/``false_state``;
    * final: ``is_done`` True.

    ``key_bit`` is the index of the working-key bit masking the
    condition (None when the branch is not obfuscated).  When
    ``swapped`` is True the true/false targets have been exchanged at
    design time to compensate for a key bit whose correct value is 1.
    """

    next_state: Optional[StateId] = None
    condition: Optional[Value] = None
    true_state: Optional[StateId] = None
    false_state: Optional[StateId] = None
    is_done: bool = False
    key_bit: Optional[int] = None
    swapped: bool = False

    def targets(self) -> list[StateId]:
        out = []
        if self.next_state is not None:
            out.append(self.next_state)
        if self.true_state is not None:
            out.append(self.true_state)
        if self.false_state is not None:
            out.append(self.false_state)
        return out


@dataclass
class Controller:
    """The synthesized finite-state machine."""

    func_name: str
    states: list[StateId] = field(default_factory=list)
    transitions: dict[StateId, Transition] = field(default_factory=dict)
    entry_state: Optional[StateId] = None

    @property
    def n_states(self) -> int:
        return len(self.states)

    def n_transition_edges(self) -> int:
        return sum(len(t.targets()) for t in self.transitions.values())

    def conditional_transitions(self) -> list[tuple[StateId, Transition]]:
        return [
            (state, transition)
            for state, transition in self.transitions.items()
            if transition.condition is not None
        ]

    def resolve_next(
        self, state: StateId, condition_value: int, key_bit_value: int = 0
    ) -> Optional[StateId]:
        """Evaluate the transition out of ``state``.

        ``condition_value`` is the datapath test result; ``key_bit_value``
        the working-key bit wired into this transition's XOR (0 when the
        branch is unobfuscated).  Returns None when the FSM completes.
        """
        transition = self.transitions[state]
        if transition.is_done:
            return None
        if transition.condition is None:
            return transition.next_state
        effective = (condition_value & 1) ^ (key_bit_value & 1)
        return transition.true_state if effective else transition.false_state


def synthesize_controller(func: Function, schedule: FunctionSchedule) -> Controller:
    """Build the FSM from a scheduled function."""
    controller = Controller(func_name=func.name)
    for block_name, block_schedule in schedule.blocks.items():
        for step in range(block_schedule.n_steps):
            controller.states.append(StateId(block_name, step))
    controller.entry_state = StateId(func.entry.name, 0)

    first_step = {name: StateId(name, 0) for name in schedule.blocks}
    for block_name, block_schedule in schedule.blocks.items():
        last = block_schedule.n_steps - 1
        # Intra-block sequencing.
        for step in range(last):
            controller.transitions[StateId(block_name, step)] = Transition(
                next_state=StateId(block_name, step + 1)
            )
        term = block_schedule.block.terminator
        state = StateId(block_name, last)
        if term is None or term.opcode is Opcode.RET:
            controller.transitions[state] = Transition(is_done=True)
        elif term.opcode is Opcode.JUMP:
            controller.transitions[state] = Transition(
                next_state=first_step[term.targets[0]]
            )
        elif term.opcode is Opcode.BRANCH:
            controller.transitions[state] = Transition(
                condition=term.operands[0],
                true_state=first_step[term.targets[0]],
                false_state=first_step[term.targets[1]],
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unexpected terminator {term}")
    return controller

"""Key-management overhead experiment (paper §3.4 / §4.2, experiment K1).

Compares the two working-key delivery schemes per benchmark:

* replication — zero extra hardware, but each locking-key bit fans out
  to ``f = ceil(W/K)`` working-key bits;
* AES — a fixed AES-256 core plus NVM bits and flip-flops proportional
  to W.

The paper observes the replication scheme is free while the AES scheme
adds a fixed decryption module plus W-proportional storage; this
experiment quantifies both against each benchmark's datapath area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchsuite import all_benchmarks
from repro.rtl.area_model import estimate_area
from repro.tao.flow import TaoFlow
from repro.tao.keymgmt import AesKeyManager, ReplicationKeyManager


@dataclass
class KeyManagementRow:
    benchmark: str
    working_key_bits: int
    design_area: float
    replication_extra: float
    replication_fanout: int
    aes_extra: float

    @property
    def aes_relative(self) -> float:
        """AES overhead as a fraction of the obfuscated design area."""
        return self.aes_extra / self.design_area if self.design_area else 0.0


def measure_keymgmt(name: str) -> KeyManagementRow:
    bench = all_benchmarks()[name]
    component = TaoFlow().obfuscate(bench.source, bench.top)
    w = component.working_key_bits
    area = estimate_area(component.design).total
    replication = ReplicationKeyManager(w)
    aes = AesKeyManager(w)
    return KeyManagementRow(
        benchmark=name,
        working_key_bits=w,
        design_area=area,
        replication_extra=replication.overhead().total,
        replication_fanout=replication.fanout,
        aes_extra=aes.overhead().total,
    )


def generate_keymgmt() -> list[KeyManagementRow]:
    return [measure_keymgmt(name) for name in all_benchmarks()]


def format_keymgmt(rows: list[KeyManagementRow]) -> str:
    lines = [
        "Key-management overhead (paper §3.4: replication free; AES = "
        "fixed core + W-proportional storage)",
        f"{'Benchmark':<10} {'W bits':>8} {'repl. extra':>12} "
        f"{'fan-out f':>10} {'AES extra':>12} {'AES/design':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<10} {row.working_key_bits:>8} "
            f"{row.replication_extra:>12.0f} {row.replication_fanout:>10} "
            f"{row.aes_extra:>12.0f} {100 * row.aes_relative:>10.1f}%"
        )
    return "\n".join(lines)

"""TAO: the paper's contribution — algorithm-level obfuscation passes,
key apportionment/management and security metrics.

The passes compose through the stage API in :mod:`repro.tao.pipeline`:
a :class:`FlowSpec` (ordered stage names + per-stage options) resolved
against the stage registry drives :class:`TaoFlow`, and every executed
stage reports :class:`StageReport` telemetry."""

from repro.tao.attacks import (
    KeySensitivityResult,
    RandomKeyAttackResult,
    ReplicationLeakResult,
    SliceBruteForceResult,
    attack_names,
    brute_force_slice_with_oracle,
    key_sensitivity_analysis,
    random_key_attack,
    replication_leak_analysis,
    run_attack,
)
from repro.tao.branch_pass import mask_branches
from repro.tao.constants_pass import obfuscate_constants
from repro.tao.dfg_variants import (
    create_dfg_variants,
    hamming_distance,
    obfuscate_dfgs,
    variant_divergence,
)
from repro.tao.flow import ObfuscatedComponent, TaoFlow, obfuscate_source
from repro.tao.key import (
    KeyApportionment,
    LockingKey,
    ObfuscationParameters,
    apportion_keys,
    extractable_constants,
)
from repro.tao.keymgmt import (
    AesKeyManager,
    KeyManagementOverhead,
    ReplicationKeyManager,
    choose_working_key,
)
from repro.tao.pipeline import (
    PIPELINE_PRESETS,
    FlowContext,
    FlowSpec,
    Stage,
    StageReport,
    available_stages,
    get_stage,
    register_stage,
    resolve_pipeline,
)
from repro.tao.rom_pass import RomObfuscation, eligible_roms, obfuscate_roms as obfuscate_rom_contents
from repro.tao.metrics import (
    KeyTrialResult,
    ValidationReport,
    build_report,
    generate_wrong_keys,
    output_corruptibility,
    run_key_trial,
    run_key_trials,
    validate_component,
)

__all__ = [
    "AesKeyManager",
    "FlowContext",
    "FlowSpec",
    "KeyApportionment",
    "PIPELINE_PRESETS",
    "Stage",
    "StageReport",
    "KeySensitivityResult",
    "KeyManagementOverhead",
    "KeyTrialResult",
    "LockingKey",
    "ObfuscatedComponent",
    "ObfuscationParameters",
    "RandomKeyAttackResult",
    "ReplicationLeakResult",
    "SliceBruteForceResult",
    "ReplicationKeyManager",
    "RomObfuscation",
    "TaoFlow",
    "ValidationReport",
    "apportion_keys",
    "attack_names",
    "available_stages",
    "brute_force_slice_with_oracle",
    "build_report",
    "generate_wrong_keys",
    "run_key_trial",
    "run_key_trials",
    "choose_working_key",
    "create_dfg_variants",
    "eligible_roms",
    "extractable_constants",
    "get_stage",
    "hamming_distance",
    "key_sensitivity_analysis",
    "mask_branches",
    "obfuscate_constants",
    "obfuscate_dfgs",
    "obfuscate_rom_contents",
    "obfuscate_source",
    "output_corruptibility",
    "random_key_attack",
    "register_stage",
    "replication_leak_analysis",
    "resolve_pipeline",
    "run_attack",
    "validate_component",
    "variant_divergence",
]

"""Dead-code elimination.

Removes instructions whose results are never used and that have no side
effects (stores, calls, terminators are always live), plus blocks
unreachable from the entry.  Uses a whole-function liveness sweep
iterated to a fixed point: a definition is live if any instruction uses
its value anywhere (the IR is not SSA, so this is conservative but
sound for dataflow through variables).
"""

from __future__ import annotations

from repro.ir.cfg import ControlFlowGraph
from repro.ir.function import Function, Module
from repro.ir.instructions import Opcode
from repro.ir.values import Constant, Temp, Value, Variable


def eliminate_dead_code(func: Function, module: Module) -> bool:
    changed = remove_unreachable_blocks(func)

    # Iterate: removing one dead instruction can make another dead.
    while True:
        used: set[Value] = set()
        for inst in func.instructions():
            for operand in inst.operands:
                if not isinstance(operand, Constant):
                    used.add(operand)
        # Return values of the function are observable through RET operands
        # (already counted).  Output parameters: variables marked is_param
        # stay live conservatively, as do all array stores.
        removed = False
        for block in func.blocks.values():
            keep = []
            for inst in block.instructions:
                if inst.is_terminator or inst.opcode in (Opcode.STORE, Opcode.CALL):
                    keep.append(inst)
                    continue
                if inst.result is None:
                    keep.append(inst)
                    continue
                if inst.result in used:
                    keep.append(inst)
                    continue
                if isinstance(inst.result, Variable) and inst.result.is_param:
                    keep.append(inst)
                    continue
                removed = True
            if len(keep) != len(block.instructions):
                block.instructions[:] = keep
        changed |= removed
        if not removed:
            break
    return changed


def remove_unreachable_blocks(func: Function) -> bool:
    cfg = ControlFlowGraph(func)
    reachable = cfg.reachable()
    dead = [name for name in func.blocks if name not in reachable]
    for name in dead:
        func.remove_block(name)
    return bool(dead)

"""Constant extraction and obfuscation (paper §3.3.2, Eq. 2-3).

Every extractable constant occurrence :math:`V^p_i` is removed from the
IR and replaced by an :class:`ObfuscatedConstant` holding the C-bit
encrypted pattern

    V^e_i = V^p_i  XOR  K_i                               (Eq. 2)

where K_i is the C-bit working-key slice dedicated to this occurrence.
The datapath recovers the plaintext at run time (Eq. 3), so with the
correct key behaviour is unchanged, while the netlist contains neither
the plaintext value nor its true bit-width: all constants are stored in
the same pre-defined width C, which also blocks bit-width-driven logic
optimizations downstream.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.values import Constant, ObfuscatedConstant
from repro.tao.key import KeyApportionment


def obfuscate_constants(
    func: Function,
    apportionment: KeyApportionment,
    working_key: int,
) -> list[ObfuscatedConstant]:
    """Replace extractable constants with key-decoded equivalents.

    ``working_key`` supplies the correct slices K_i (the design is built
    so that exactly this key reproduces the original values).  Returns
    the created :class:`ObfuscatedConstant` values in slot order.
    """
    width = apportionment.params.constant_width
    created: list[ObfuscatedConstant] = []
    instructions = {inst.uid: inst for inst in func.instructions()}
    for index, (block_name, inst_uid, position) in enumerate(
        apportionment.constant_slots
    ):
        inst = instructions.get(inst_uid)
        if inst is None:  # pragma: no cover - defensive
            raise ValueError(f"constant slot references missing instruction {inst_uid}")
        operand = inst.operands[position]
        if not isinstance(operand, Constant):  # pragma: no cover - defensive
            raise ValueError(f"slot {index} operand is not a constant: {operand}")
        offset = apportionment.constant_offset_of[index]
        key_slice = (working_key >> offset) & ((1 << width) - 1)
        stored = ObfuscatedConstant.encode(operand.value, key_slice, width)
        obfuscated = ObfuscatedConstant(
            stored_value=stored,
            key_offset=offset,
            storage_width=width,
            original=operand,
        )
        if obfuscated.decode(working_key) != operand.value:  # pragma: no cover
            raise AssertionError(
                f"lossy constant encode: {operand.value} -> "
                f"{obfuscated.decode(working_key)}"
            )
        inst.operands[position] = obfuscated
        created.append(obfuscated)
    return created

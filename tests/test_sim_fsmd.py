"""Tests for the cycle-accurate FSMD simulator: agreement with the
golden interpreter across control/data patterns, plus harness behavior."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import compile_c
from repro.hls import hls_flow
from repro.sim import (
    SimulationError,
    Testbench,
    hamming_distance_fraction,
    output_bit_vector,
    run_testbench,
    simulate,
)


def design_for(source, top=None):
    module = compile_c(source)
    if top is None:
        top = next(iter(module.functions))
    return hls_flow(module, top)


class TestAgreementWithGolden:
    @pytest.mark.parametrize(
        "source,args,arrays",
        [
            ("int f(int a) { return a * 3 - 7; }", [10], None),
            (
                "int f(int a) { if (a > 5) return 1; else return 0; }",
                [9],
                None,
            ),
            (
                "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i * i; return s; }",
                [7],
                None,
            ),
            (
                """
                int f(int a[4], int out[4]) {
                  for (int i = 0; i < 4; i++) out[i] = a[i] << 1;
                  return out[3];
                }
                """,
                [],
                {"a": [1, 2, 3, 4]},
            ),
            (
                """
                int f(int x) {
                  int rom[4] = {2, 4, 8, 16};
                  int s = 0;
                  for (int i = 0; i < 4; i++) s += rom[i] * x;
                  return s;
                }
                """,
                [3],
                None,
            ),
            (
                """
                int sub(int a, int b) { return a - b; }
                int f(int a, int b) { return sub(a, b) + sub(b, a); }
                """,
                [10, 4],
                None,
            ),
            (
                "int f(int a) { int i = 0; while (a > 1) { a /= 2; i++; } return i; }",
                [64],
                None,
            ),
        ],
    )
    def test_matches_interpreter(self, source, args, arrays):
        design = design_for(source, "f")
        bench = Testbench(args=list(args), arrays=dict(arrays or {}))
        outcome = run_testbench(design, bench)
        assert outcome.matches, (
            f"golden={outcome.golden.return_value} "
            f"sim={outcome.simulated.return_value}"
        )

    def test_unsigned_arithmetic(self):
        source = "unsigned int f(unsigned int a) { return a >> 1; }"
        design = design_for(source)
        bench = Testbench(args=[0xFFFFFFFE])
        assert run_testbench(design, bench).matches

    def test_narrow_types(self):
        source = "char f(char a, char b) { return a + b; }"
        design = design_for(source)
        assert run_testbench(design, Testbench(args=[100, 100])).matches


class TestSimulatorBehavior:
    def test_cycle_budget_timeout(self):
        source = "int f(int n) { int s = 0; while (n != 0) { s += 1; } return s; }"
        design = design_for(source)
        result = simulate(design, [1], max_cycles=50)
        assert not result.completed
        assert result.cycles == 50

    def test_wrong_arg_count(self):
        design = design_for("int f(int a) { return a; }")
        with pytest.raises(SimulationError, match="expects"):
            simulate(design, [])

    def test_state_trace(self):
        from repro.sim.fsmd_sim import FsmdSimulator

        design = design_for("int f() { return 1; }")
        result = FsmdSimulator(design, trace=True).run([])
        assert result.state_trace
        assert result.completed

    def test_void_function(self):
        source = "void f(int out[2]) { out[0] = 5; out[1] = 6; }"
        design = design_for(source)
        result = simulate(design)
        assert result.completed
        assert result.arrays["out"] == [5, 6]

    def test_array_inputs_padded(self):
        design = design_for("int f(int a[4]) { return a[3]; }")
        result = simulate(design, arrays={"a": [7]})  # short input padded
        assert result.return_value == 0

    def test_cycles_deterministic(self):
        design = design_for(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        a = simulate(design, [5]).cycles
        b = simulate(design, [5]).cycles
        assert a == b


class TestOutputBits:
    def test_bit_vector_includes_return_and_arrays(self):
        source = "int f(int out[2]) { out[0] = 1; out[1] = 2; return 3; }"
        module = compile_c(source)
        bits = output_bit_vector(3, {"out": [1, 2]}, ["out"], module, "f")
        assert len(bits) == 32 * 3
        assert bits[0] == 1 and bits[1] == 1  # return LSBs of 3

    def test_hamming_identical(self):
        assert hamming_distance_fraction([1, 0, 1], [1, 0, 1]) == 0.0

    def test_hamming_all_different(self):
        assert hamming_distance_fraction([1, 1], [0, 0]) == 1.0

    def test_hamming_length_mismatch_counts_tail(self):
        assert hamming_distance_fraction([1, 1, 1, 1], []) == 1.0

    def test_hamming_empty(self):
        assert hamming_distance_fraction([], []) == 0.0


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=-100, max_value=100),
    st.integers(min_value=0, max_value=10),
)
def test_property_fsmd_equals_interpreter(a, n):
    """Property: the FSMD simulation always equals the golden model."""
    source = """
    int f(int a, int n) {
      int acc = a;
      for (int i = 0; i < n; i++) {
        if (acc % 3 == 0) acc = acc / 3 + i;
        else acc = acc * 2 - i;
      }
      return acc;
    }
    """
    design = design_for(source)
    assert run_testbench(design, Testbench(args=[a, n])).matches

"""Tests for the evaluation harness (table/figure regenerators).

Heavier full-suite sweeps live in benchmarks/; here we exercise each
regenerator on a small slice and check shape properties the paper
reports.
"""

import pytest

from repro.evaluation import (
    PAPER_FIGURE6,
    PAPER_TABLE1,
    characterize_benchmark,
    format_figure6,
    format_keymgmt,
    format_table1,
    format_validation,
    measure_benchmark,
    measure_frequency,
    measure_keymgmt,
    measure_latency,
    validate_benchmark,
)
from repro.evaluation.validation import ValidationSummary


class TestTable1:
    def test_sobel_row(self):
        row = characterize_benchmark("sobel")
        assert row.benchmark == "sobel"
        assert row.c_lines > 10
        assert row.consts > 0
        assert row.bbs > 5
        assert row.cjmps >= 2
        # Eq. 1 consistency
        assert row.w == row.cjmps + 32 * row.consts + 4 * row.bbs

    def test_viterbi_has_most_constants(self):
        viterbi = characterize_benchmark("viterbi")
        sobel = characterize_benchmark("sobel")
        gsm = characterize_benchmark("gsm")
        assert viterbi.consts > gsm.consts > 0
        assert viterbi.consts > sobel.consts
        # Paper shape: viterbi's W dominates the suite.
        assert viterbi.w > gsm.w

    def test_paper_reference_complete(self):
        assert set(PAPER_TABLE1) == {"gsm", "adpcm", "sobel", "backprop", "viterbi"}

    def test_format_renders_both_columns(self):
        rows = [characterize_benchmark("sobel")]
        text = format_table1(rows)
        assert "sobel" in text
        assert "| 110" in format_table1([characterize_benchmark("gsm")])


class TestFigure6:
    @pytest.fixture(scope="class")
    def sobel_row(self):
        return measure_benchmark("sobel")

    def test_branch_overhead_negligible(self, sobel_row):
        assert sobel_row.branches_overhead < 0.02  # paper: ~0-2 %

    def test_constants_overhead_moderate(self, sobel_row):
        assert 0.0 < sobel_row.constants_overhead < 0.35

    def test_dfg_overhead_largest(self, sobel_row):
        assert sobel_row.dfg_overhead > sobel_row.constants_overhead
        assert sobel_row.dfg_overhead > sobel_row.branches_overhead

    def test_combined_at_least_each_single(self, sobel_row):
        assert sobel_row.combined_overhead >= sobel_row.dfg_overhead * 0.9

    def test_format(self, sobel_row):
        text = format_figure6([sobel_row])
        assert "sobel" in text and "average" in text

    def test_paper_reference_shape(self):
        # The reference data we compare against matches the paper's text:
        # DFG variants dominate, backprop worst (>30 %).
        assert PAPER_FIGURE6["backprop"]["dfg"] == 31
        for row in PAPER_FIGURE6.values():
            assert row["dfg"] >= row["branches"]


class TestOverheadExperiments:
    def test_latency_zero_overhead(self):
        row = measure_latency("sobel")
        assert row.overhead == 0.0  # paper §4.2: no performance overhead
        assert row.baseline_cycles > 100

    def test_frequency_shape(self):
        row = measure_frequency("sobel")
        ratios = row.ratios()
        assert ratios["branches"] > 0.99  # <1 % loss
        assert ratios["constants"] <= 1.0
        assert ratios["dfg"] <= 1.0
        assert ratios["dfg"] <= ratios["branches"]


class TestValidationExperiment:
    def test_small_campaign_on_sobel(self):
        report = validate_benchmark("sobel", n_keys=6, n_workloads=1)
        assert report.correct_key_ok
        assert report.wrong_keys_all_corrupt
        assert report.average_hamming > 0.0

    def test_summary_aggregation(self):
        report = validate_benchmark("sobel", n_keys=4)
        summary = ValidationSummary(reports={"sobel": report})
        assert summary.average_hamming == report.average_hamming
        assert summary.all_correct_keys_ok
        text = format_validation(summary)
        assert "sobel" in text and "62.2%" in text


class TestKeyManagementExperiment:
    def test_replication_free_aes_not(self):
        row = measure_keymgmt("sobel")
        assert row.replication_extra == 0.0
        assert row.aes_extra > 0.0
        assert row.replication_fanout >= 1
        assert 0.0 < row.aes_relative < 5.0

    def test_format(self):
        text = format_keymgmt([measure_keymgmt("sobel")])
        assert "sobel" in text

"""Process-wide memoization caches for the campaign engine.

Two hot paths dominate every validation campaign:

* the golden software interpretation of a ``(design, testbench)`` pair,
  which is key-independent and therefore identical for all 100 locking
  keys the §4.3 campaign simulates — :class:`GoldenCache` memoizes it so
  the interpreter runs exactly once per pair;
* the front-end compilation + optimization pipeline, which
  ``TaoFlow.synthesize_pair`` used to run twice on the same source
  (baseline + obfuscated) — :class:`FrontEndCache` memoizes the
  optimized module keyed on the SHA-256 of the source text and hands
  out deep copies so callers may mutate freely.

Cache keys:

* golden results: ``(id(module), func name, testbench fingerprint)``
  where the fingerprint covers the scalar args, the array contents and
  the observed-array selection.  A weak reference on the module purges
  its entries when the module is garbage collected, so a recycled
  ``id()`` can never alias a stale entry.
* front-end modules: ``sha256(source)``.  The module name is cosmetic
  and is re-applied to each copy, so ``synthesize_pair``'s baseline and
  obfuscated compilations share one cache entry.

The module-level singletons (:data:`GOLDEN_CACHE`,
:data:`FRONTEND_CACHE`) are per process; campaign workers each warm
their own.  :func:`reset_caches` clears both (used by tests and by
long-lived servers that want a cold start).
"""

from __future__ import annotations

import copy
import hashlib
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.hls.design import FsmdDesign
    from repro.ir.function import Module
    from repro.sim.interpreter import ExecutionResult
    from repro.sim.testbench import Testbench


@dataclass
class CacheStats:
    """Hit/miss counters exposed for tests and campaign telemetry."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


def testbench_fingerprint(
    bench: "Testbench", observed: Sequence[str]
) -> Hashable:
    """Value-based identity of a workload (args, arrays, observables)."""
    return (
        tuple(bench.args),
        tuple(sorted((name, tuple(vals)) for name, vals in bench.arrays.items())),
        tuple(observed),
    )


def _copy_execution_result(result: "ExecutionResult") -> "ExecutionResult":
    """Defensive copy so callers cannot mutate the cached master."""
    from repro.sim.interpreter import ExecutionResult

    return ExecutionResult(
        return_value=result.return_value,
        arrays={name: list(vals) for name, vals in result.arrays.items()},
        instructions_executed=result.instructions_executed,
        block_trace=list(result.block_trace),
    )


class GoldenCache:
    """Memoizes golden interpreter executions per ``(design, testbench)``.

    The golden model is key-independent: a validation campaign that
    simulates N locking keys over the same workload needs the software
    reference exactly once.  Entries also store the flattened golden
    output bit vector so the Hamming baseline is not recomputed per key.

    Entries are guarded two ways: a weak reference purges them when
    the module is garbage collected (so a recycled ``id()`` cannot
    alias a stale entry), and every hit re-checks a checksum of the
    module's printed IR (~0.2 ms, versus tens of ms per golden run) so
    in-place mutation of a live module — an optimization or
    obfuscation pass run after a simulation — invalidates its entries
    instead of serving stale golden outputs.
    """

    def __init__(self) -> None:
        self._entries: dict[
            Hashable, tuple[str, "ExecutionResult", list[int]]
        ] = {}
        self._watched: dict[int, weakref.ref] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._watched.clear()
        self.stats.reset()

    def golden_for(
        self,
        design: "FsmdDesign",
        bench: "Testbench",
        observed: Sequence[str],
    ) -> tuple["ExecutionResult", list[int]]:
        """Golden execution + output bit vector, computed at most once."""
        module = design.module
        func_name = design.func.name
        key = (id(module), func_name, testbench_fingerprint(bench, observed))
        checksum = self._module_checksum(module)
        entry = self._entries.get(key)
        if entry is None or entry[0] != checksum:
            self.stats.misses += 1
            golden, bits = self._compute(module, func_name, bench, observed)
            entry = (checksum, golden, bits)
            self._entries[key] = entry
            self._watch(module)
        else:
            self.stats.hits += 1
        _checksum, golden, bits = entry
        return _copy_execution_result(golden), list(bits)

    @staticmethod
    def _module_checksum(module: "Module") -> str:
        # str(module) prints local arrays as bare "alloc" lines, so hash
        # initializer contents too — the interpreter reads them, and a
        # ROM-mutating pass must invalidate the cached golden outputs.
        hasher = hashlib.sha256(str(module).encode("utf-8"))
        for func in module:
            for array in func.arrays.values():
                if array.initializer is not None:
                    hasher.update(
                        f"{func.name}.{array.name}:{tuple(array.initializer)}".encode(
                            "utf-8"
                        )
                    )
        return hasher.hexdigest()

    # ------------------------------------------------------------------
    def _compute(
        self,
        module: "Module",
        func_name: str,
        bench: "Testbench",
        observed: Sequence[str],
    ) -> tuple["ExecutionResult", list[int]]:
        from repro.sim.interpreter import Interpreter
        from repro.sim.testbench import output_bit_vector

        golden = Interpreter(module).run(
            func_name, bench.args, dict(bench.arrays)
        )
        bits = output_bit_vector(
            golden.return_value, golden.arrays, observed, module, func_name
        )
        return golden, bits

    def _watch(self, module: "Module") -> None:
        mid = id(module)
        if mid not in self._watched:
            self._watched[mid] = weakref.ref(
                module, lambda _ref, mid=mid: self._purge(mid)
            )

    def _purge(self, mid: int) -> None:
        self._watched.pop(mid, None)
        for key in [k for k in self._entries if k[0] == mid]:
            del self._entries[key]


class FrontEndCache:
    """Memoizes front-end compilation keyed on the source text hash.

    Stores the pristine optimized module and returns a deep copy per
    lookup: the TAO obfuscation passes mutate the IR in place, so the
    master must never escape.  The requested module name is applied to
    the copy, letting baseline and obfuscated compilations of the same
    source share one entry.
    """

    def __init__(self) -> None:
        self._modules: dict[str, "Module"] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._modules)

    def clear(self) -> None:
        self._modules.clear()
        self.stats.reset()

    @staticmethod
    def source_key(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def get_or_compile(
        self,
        source: str,
        name: str,
        compile_fn: Callable[[str, str], "Module"],
    ) -> "Module":
        """Return a private copy of the optimized module for ``source``."""
        key = self.source_key(source)
        master = self._modules.get(key)
        if master is None:
            self.stats.misses += 1
            master = compile_fn(source, name)
            self._modules[key] = master
        else:
            self.stats.hits += 1
        module = copy.deepcopy(master)
        module.name = name
        return module


#: Per-process singletons; campaign workers each warm their own.
GOLDEN_CACHE = GoldenCache()
FRONTEND_CACHE = FrontEndCache()


def reset_caches() -> None:
    """Clear both process-wide caches (tests / cold-start hooks)."""
    GOLDEN_CACHE.clear()
    FRONTEND_CACHE.clear()


def cache_stats() -> dict[str, dict[str, int]]:
    """Snapshot of both caches' counters (campaign telemetry)."""
    return {
        "golden": GOLDEN_CACHE.stats.as_dict(),
        "frontend": FRONTEND_CACHE.stats.as_dict(),
    }

"""DFG-variant generation (paper §3.3.4, Algorithm 1, Fig. 4).

For each basic block with key slice ``k_i`` of ``B_i`` bits, TAO builds
one DFG variant per possible selector value.  The variant stored at the
correct value reproduces the baseline block; the others are derived by

1. **operation-type swaps** — operations are clustered by functional
   unit class; each operation elects a reciprocal operation in another
   cluster at the variant's Hamming distance from ``k_i`` and the two
   opcodes swap with probability 0.5 (step 1 in Fig. 4);
2. **dependence rearrangement** — each operand elects an alternative
   producer at the same distance and the edge is rewired with
   probability 0.5, keeping causality within the baseline schedule
   (step 2 in Fig. 4).

All variants are then merged into one datapath micro-architecture
(step 3): the design model accounts for this by widening FU operation
sets and multiplexer source sets (see ``FsmdDesign.merged_fu_optypes``
and ``fu_input_sources``), which is where the paper's ~21 % average
area overhead comes from.

Variants keep the baseline schedule length, so the correct key incurs
no latency change, while wrong keys execute "credible" but incorrect
data flows — exactly the behaviour §4.3 validates.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional

from repro.hls.design import BlockVariants, FsmdDesign, VariantOp
from repro.hls.resources import FUKind, fu_kind_for
from repro.ir.basic_block import BasicBlock
from repro.ir.instructions import BINARY_OPS, Instruction, Opcode
from repro.ir.values import Constant, Value
from repro.tao.key import KeyApportionment


def hamming_distance(a: int, b: int) -> int:
    """Bit-count of ``a XOR b`` (Algorithm 1's ComputeDistance)."""
    return bin(a ^ b).count("1")


#: FU classes whose operations may exchange types.  Swapping an op onto a
#: functional unit of a radically more expensive class (a divider or
#: multiplier merged into an adder slot) would dominate the datapath
#: area; the paper notes the variant technique targets computations with
#: "simple functional units (e.g., shifters and Boolean operations)"
#: (§4.2), so type swaps stay within comparable-cost classes.
SWAP_CLASSES: list[set[FUKind]] = [
    {FUKind.ADDSUB, FUKind.LOGIC, FUKind.CMP, FUKind.SHIFT},
    {FUKind.MUL},
    {FUKind.DIV},
]


def _swap_class_of(kind: FUKind) -> set[FUKind]:
    for group in SWAP_CLASSES:
        if kind in group:
            return group
    return {kind}  # pragma: no cover - all kinds covered above


def _baseline_variant_ops(block: BasicBlock, cstep_of: dict[int, int]) -> list[VariantOp]:
    """The identity variant: one VariantOp per baseline instruction."""
    ops: list[VariantOp] = []
    for slot, inst in enumerate(block.instructions):
        ops.append(
            VariantOp(
                opcode=inst.opcode,
                result=inst.result,
                operands=list(inst.operands),
                cstep=cstep_of[inst.uid],
                array_name=inst.array.name if inst.array is not None else None,
                slot=slot,
            )
        )
    return ops


def _swappable(op: VariantOp) -> bool:
    """Operations eligible for type swaps: binary datapath ops."""
    return op.opcode in BINARY_OPS


def _cluster_operations(ops: list[VariantOp]) -> dict[FUKind, list[VariantOp]]:
    """Group swap-eligible ops by FU class (Algorithm 1's clusters)."""
    clusters: dict[FUKind, list[VariantOp]] = {}
    for op in ops:
        if not _swappable(op):
            continue
        kind = fu_kind_for(op.opcode)
        if kind is not None:
            clusters.setdefault(kind, []).append(op)
    return clusters


def _swap_operation_types(
    ops: list[VariantOp], distance: int, rng: random.Random
) -> None:
    """Step 1: statistically swap opcodes between clusters.

    The reciprocal operation is drawn from a *different* cluster of the
    same cost class (see :data:`SWAP_CLASSES`); within a single-cluster
    class, ops swap among themselves.
    """
    clusters = _cluster_operations(ops)
    kinds = sorted(clusters, key=lambda k: k.value)
    if not kinds:
        return
    swappable = [op for op in ops if _swappable(op)]
    for op in swappable:
        own_kind = fu_kind_for(op.opcode)
        assert own_kind is not None
        allowed = _swap_class_of(own_kind)
        other_kinds = [k for k in kinds if k is not own_kind and k in allowed]
        if other_kinds:
            target_kind = other_kinds[distance % len(other_kinds)]
        elif own_kind in clusters and len(clusters[own_kind]) > 1:
            target_kind = own_kind  # swap within the cluster
        else:
            continue
        candidates = clusters[target_kind]
        if not candidates:
            continue
        reciprocal = candidates[distance % len(candidates)]
        if reciprocal is op:
            continue
        if rng.random() < 0.5:
            op.opcode, reciprocal.opcode = reciprocal.opcode, op.opcode


def _rearrange_dependences(
    ops: list[VariantOp], distance: int, rng: random.Random
) -> None:
    """Step 2: statistically rewire operand edges, keeping causality.

    An operand of an op in cstep s may be replaced by the result of any
    op completing in a cstep strictly before s (results are registered),
    so the rewired graph stays executable on the baseline schedule.
    """
    producers_by_cstep: list[tuple[int, Value]] = [
        (op.cstep, op.result)
        for op in ops
        if op.result is not None and op.opcode is not Opcode.STORE
    ]
    for op in ops:
        if op.opcode in (Opcode.JUMP, Opcode.BRANCH, Opcode.RET):
            continue
        earlier = [value for cstep, value in producers_by_cstep if cstep < op.cstep]
        if not earlier:
            continue
        for position, operand in enumerate(op.operands):
            if isinstance(operand, Constant):
                continue  # constants are handled by the constant pass
            if rng.random() >= 0.5:
                continue
            replacement = earlier[(distance + position) % len(earlier)]
            if replacement is operand or replacement is op.result:
                continue
            op.operands[position] = replacement


def create_dfg_variants(
    block: BasicBlock,
    cstep_of: dict[int, int],
    key_offset: int,
    key_bits: int,
    correct_value: int,
    seed: int,
    diversity: str = "distance",
) -> BlockVariants:
    """Algorithm 1: build the variant set for one basic block.

    With ``diversity="distance"`` the transformation is a deterministic
    function of the variant's Hamming distance to the correct selector
    (Algorithm 1's ``ComputeDistance`` drives both GetOperation and
    GetDependence), so equal-distance selectors share a decoy structure
    and the merged multiplexer network stays compact.  With
    ``diversity="selector"`` every selector value draws independent
    randomness — maximal structural diversity at higher area cost.
    """
    variants = BlockVariants(
        block_name=block.name,
        key_offset=key_offset,
        key_bits=key_bits,
        correct_value=correct_value,
    )
    # Stable across processes (str hash is salted per interpreter run,
    # which would make the generated hardware non-reproducible).
    block_hash = zlib.crc32(block.name.encode()) & 0xFFFF
    for selector in range(1 << key_bits):
        ops = _baseline_variant_ops(block, cstep_of)
        if selector != correct_value:
            distance = hamming_distance(selector, correct_value)
            if diversity == "selector":
                salt = selector
            else:
                salt = distance
            rng = random.Random((seed << 20) ^ (salt << 8) ^ block_hash)
            _swap_operation_types(ops, distance, rng)
            _rearrange_dependences(ops, distance, rng)
        variants.variants[selector] = ops
    return variants


def obfuscate_dfgs(
    design: FsmdDesign,
    apportionment: KeyApportionment,
    working_key: int,
    seed: int,
    diversity: str = "distance",
) -> dict[str, BlockVariants]:
    """Create and attach DFG variants for every apportioned block."""
    created: dict[str, BlockVariants] = {}
    for block_name, (offset, bits) in apportionment.block_slice_of.items():
        block_schedule = design.schedule.blocks[block_name]
        correct_value = (working_key >> offset) & ((1 << bits) - 1)
        variants = create_dfg_variants(
            block=block_schedule.block,
            cstep_of=block_schedule.cstep_of,
            key_offset=offset,
            key_bits=bits,
            correct_value=correct_value,
            seed=seed,
            diversity=diversity,
        )
        created[block_name] = variants
    design.block_variants.update(created)
    return created


def variant_divergence(variants: BlockVariants) -> float:
    """Fraction of (opcode, operand) slots differing from the baseline.

    A diagnostic for how much structural diversity Algorithm 1 injected
    into a block (0.0 = all variants identical to the baseline).
    """
    baseline = variants.variants[variants.correct_value]
    total = 0
    differing = 0
    for selector, ops in variants.variants.items():
        if selector == variants.correct_value:
            continue
        for base_op, op in zip(baseline, ops):
            total += 1 + len(base_op.operands)
            if op.opcode is not base_op.opcode:
                differing += 1
            for a, b in zip(base_op.operands, op.operands):
                if a is not b:
                    differing += 1
    return differing / total if total else 0.0

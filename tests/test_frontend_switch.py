"""Tests for switch-case support (desugared to if/else chains) and its
interaction with TAO branch masking (§3.3.3's switch-case note)."""

import pytest

from repro.frontend import compile_c
from repro.frontend.parser import ParseError, parse
from repro.sim import Testbench, run_testbench
from repro.sim.interpreter import run_function
from repro.tao import TaoFlow


def run(source, func, args=()):
    return run_function(compile_c(source), func, args).return_value


class TestSwitchSemantics:
    SOURCE = """
    int classify(int x) {
      int kind = 0;
      switch (x) {
        case 0:
          kind = 10;
          break;
        case 1:
        case 2:
          kind = 20;
          break;
        case -5:
          kind = 30;
          break;
        default:
          kind = 99;
          break;
      }
      return kind;
    }
    """

    @pytest.mark.parametrize(
        "x,expected",
        [(0, 10), (1, 20), (2, 20), (-5, 30), (7, 99), (-1, 99)],
    )
    def test_dispatch(self, x, expected):
        assert run(self.SOURCE, "classify", [x]) == expected

    def test_switch_without_default(self):
        source = """
        int f(int x) {
          int r = -1;
          switch (x) {
            case 3: r = 33; break;
            case 4: r = 44; break;
          }
          return r;
        }
        """
        assert run(source, "f", [3]) == 33
        assert run(source, "f", [9]) == -1

    def test_case_with_return(self):
        source = """
        int f(int x) {
          switch (x) {
            case 1: return 100;
            case 2: return 200;
            default: return 0;
          }
        }
        """
        assert run(source, "f", [1]) == 100
        assert run(source, "f", [2]) == 200
        assert run(source, "f", [3]) == 0

    def test_selector_evaluated_once(self):
        # The selector expression has a side effect via an array write;
        # it must execute exactly once.
        source = """
        int f(int log[1], int x) {
          int hits = log[0];
          log[0] = hits + 1;
          switch (x * 2) {
            case 4: return log[0];
            default: return -log[0];
          }
        }
        """
        module = compile_c(source)
        result = run_function(module, "f", [2], {"log": [0]})
        assert result.return_value == 1
        assert result.arrays["log"] == [1]

    def test_empty_case_group_shares_body(self):
        source = """
        int f(int x) {
          int r = 0;
          switch (x) {
            case 1:
            case 2:
            case 3:
              r = 7;
              break;
          }
          return r;
        }
        """
        for x in (1, 2, 3):
            assert run(source, "f", [x]) == 7
        assert run(source, "f", [4]) == 0

    def test_char_literal_case(self):
        source = """
        int f(int c) {
          switch (c) {
            case 'a': return 1;
            case 'b': return 2;
            default: return 0;
          }
        }
        """
        assert run(source, "f", [ord("a")]) == 1
        assert run(source, "f", [ord("b")]) == 2


class TestSwitchErrors:
    def test_fall_through_rejected(self):
        source = """
        int f(int x) {
          int r = 0;
          switch (x) {
            case 1: r = 1;
            case 2: r = 2; break;
          }
          return r;
        }
        """
        with pytest.raises(ParseError, match="fall-through"):
            parse(source)

    def test_non_literal_case_rejected(self):
        source = """
        int f(int x, int y) {
          switch (x) { case y: return 1; }
          return 0;
        }
        """
        with pytest.raises(ParseError, match="literal"):
            parse(source)

    def test_stray_statement_before_case_rejected(self):
        source = """
        int f(int x) {
          switch (x) { x = 1; case 1: return 1; }
          return 0;
        }
        """
        with pytest.raises(ParseError):
            parse(source)


class TestSwitchObfuscation:
    SOURCE = """
    int dispatch(int op, int a, int b) {
      switch (op) {
        case 0: return a + b;
        case 1: return a - b;
        case 2: return a * b;
        case 3: return a & b;
        default: return 0;
      }
    }
    """

    def test_each_case_gets_a_key_bit(self):
        component = TaoFlow().obfuscate(self.SOURCE, "dispatch")
        # 4 case tests -> at least 4 masked conditional branches.
        assert component.apportionment.num_branches >= 4

    def test_obfuscated_dispatch_correct_under_key(self):
        component = TaoFlow().obfuscate(self.SOURCE, "dispatch")
        for op, expected in [(0, 9), (1, 3), (2, 18), (3, 2)]:
            outcome = run_testbench(
                component.design,
                Testbench(args=[op, 6, 3]),
                working_key=component.correct_working_key,
            )
            assert outcome.matches
            assert outcome.simulated.return_value == expected

    def test_wrong_key_misroutes_dispatch(self):
        component = TaoFlow().obfuscate(self.SOURCE, "dispatch")
        # Flip the key bit of one case branch: dispatch must misroute
        # for at least one opcode.
        bit = sorted(component.apportionment.branch_bit_of.values())[0]
        wrong = component.correct_working_key ^ (1 << bit)
        mismatches = 0
        for op in range(4):
            outcome = run_testbench(
                component.design,
                Testbench(args=[op, 6, 3]),
                working_key=wrong,
                max_cycles=5000,
            )
            mismatches += not outcome.matches
        assert mismatches >= 1

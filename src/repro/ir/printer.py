"""Human-readable IR dumps with CFG and schedule annotations.

The plain ``str()`` of a function prints bare instructions; this module
adds the analyses a developer wants while debugging the flow: block
predecessors/successors, loop membership, per-instruction constants,
and (when a schedule is supplied) the assigned control step.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.cfg import ControlFlowGraph
from repro.ir.function import Function, Module
from repro.ir.values import Constant, ObfuscatedConstant


def format_function(
    func: Function,
    schedule: Optional[object] = None,
    show_cfg: bool = True,
) -> str:
    """Render one function; pass a ``FunctionSchedule`` to show csteps."""
    cfg = ControlFlowGraph(func) if show_cfg else None
    loops = cfg.blocks_in_loops() if cfg is not None else set()
    params = ", ".join(f"{p.type} {p.name}" for p in func.params)
    lines = [f"func {func.return_type} @{func.name}({params}) {{"]
    for array in func.local_arrays():
        init = ""
        if array.initializer is not None:
            preview = ", ".join(str(v) for v in array.initializer[:8])
            ellipsis = ", ..." if len(array.initializer) > 8 else ""
            init = f" = {{{preview}{ellipsis}}}"
        lines.append(f"  alloc {array.type} {array.name}{init}")
    for name, block in func.blocks.items():
        annotations = []
        if cfg is not None:
            preds = cfg.preds.get(name, [])
            if preds:
                annotations.append(f"preds: {', '.join(preds)}")
            if name in loops:
                annotations.append("in-loop")
        suffix = f"    ; {' | '.join(annotations)}" if annotations else ""
        lines.append(f"{name}:{suffix}")
        block_schedule = None
        if schedule is not None:
            block_schedule = schedule.blocks.get(name)
        for inst in block.instructions:
            step = ""
            if block_schedule is not None:
                step = f"[c{block_schedule.cstep_of[inst.uid]}] "
            note = _constant_note(inst)
            lines.append(f"  {step}{inst}{note}")
    lines.append("}")
    return "\n".join(lines)


def _constant_note(inst) -> str:
    notes = []
    for operand in inst.operands:
        if isinstance(operand, ObfuscatedConstant):
            notes.append(
                f"{operand.name}=enc({operand.original.value})@k{operand.key_offset}"
            )
        elif isinstance(operand, Constant) and abs(operand.value) >= 2:
            pass  # plain constants already print inline
    if notes:
        return "    ; " + ", ".join(notes)
    return ""


def format_module(module: Module, show_cfg: bool = True) -> str:
    """Render every function in the module."""
    header = f"; module {module.name} ({module.source_lines} source lines)"
    bodies = [format_function(f, show_cfg=show_cfg) for f in module]
    return "\n\n".join([header] + bodies)


def cfg_dot(func: Function) -> str:
    """Graphviz dot text of the function's CFG (for visual debugging)."""
    cfg = ControlFlowGraph(func)
    lines = [f'digraph "{func.name}" {{', "  node [shape=box];"]
    for name, block in func.blocks.items():
        count = len(block.instructions)
        lines.append(f'  "{name}" [label="{name}\\n{count} insts"];')
    for src, dests in cfg.succs.items():
        term = func.blocks[src].terminator
        for index, dst in enumerate(dests):
            label = ""
            if term is not None and len(dests) == 2:
                label = ' [label="T"]' if index == 0 else ' [label="F"]'
            lines.append(f'  "{src}" -> "{dst}"{label};')
    lines.append("}")
    return "\n".join(lines)

"""Quickstart: obfuscate a small accelerator with TAO and unlock it.

Demonstrates the core loop of the paper:

1. write a C kernel;
2. run the TAO-enhanced HLS flow (constants + branches + DFG variants);
3. simulate with the correct locking key (works) and a wrong key
   (produces corrupted outputs);
4. emit the obfuscated Verilog.

Run:  python examples/quickstart.py
"""

import random

from repro.rtl import emit_verilog, estimate_area, estimate_timing
from repro.sim import Testbench, run_testbench
from repro.tao import LockingKey, TaoFlow

SOURCE = """
// A tiny MAC-and-threshold accelerator.
int accumulate(int gain, int data[8], int out[8]) {
  int acc = 0;
  for (int i = 0; i < 8; i++) {
    int v = data[i] * gain + 5;
    if (v > 20) acc += v;
    else acc -= v;
    out[i] = acc;
  }
  return acc;
}
"""


def main() -> None:
    flow = TaoFlow()

    print("=== TAO quickstart ===")
    baseline, component = flow.synthesize_pair(SOURCE, "accumulate")
    apportionment = component.apportionment
    print(
        f"working key W = {component.working_key_bits} bits "
        f"({apportionment.num_branches} branches, "
        f"{apportionment.num_constants} constants x 32, "
        f"{apportionment.num_blocks} blocks x 4)  [Eq. 1]"
    )

    bench = Testbench(args=[3], arrays={"data": [1, 5, 2, 9, 4, 7, 3, 8]})

    # Correct key: outputs match the golden software execution.
    good = run_testbench(
        component.design, bench, working_key=component.correct_working_key
    )
    print(f"correct key : matches={good.matches}  cycles={good.cycles}")

    # Wrong key: the circuit still runs, but computes the wrong thing.
    wrong_key = LockingKey.random(random.Random(1))
    bad = run_testbench(
        component.design,
        bench,
        working_key=component.working_key_for(wrong_key),
        max_cycles=8 * good.cycles,
    )
    print(f"wrong key   : matches={bad.matches}  cycles={bad.cycles}")

    # Overheads versus the unobfuscated baseline.
    base_area = estimate_area(baseline).total
    obf_area = estimate_area(component.design).total
    base_mhz = estimate_timing(baseline).frequency_mhz
    obf_mhz = estimate_timing(component.design).frequency_mhz
    print(f"area        : +{100 * (obf_area / base_area - 1):.1f}% vs baseline")
    print(
        f"frequency   : {obf_mhz:.0f} MHz vs {base_mhz:.0f} MHz "
        f"({100 * (obf_mhz / base_mhz - 1):+.1f}%)"
    )

    verilog = emit_verilog(component.design)
    print(f"\nObfuscated RTL: {len(verilog.splitlines())} lines of Verilog; "
          "first 12 lines:")
    for line in verilog.splitlines()[:12]:
        print("  " + line)

    assert good.matches and not bad.matches
    print("\nOK: correct key unlocks the design; wrong key corrupts it.")


if __name__ == "__main__":
    main()

"""Experiment T1 — regenerate Table 1 (benchmark characteristics).

Paper reference: Table 1 reports # C lines, # Const, # BB, # CJMP and
the working-key width W per benchmark after compiler optimization with
C = 32, one key bit per branch and B_i = 4.
"""

import pytest

from repro.evaluation.table1 import (
    PAPER_TABLE1,
    characterize_benchmark,
    format_table1,
    generate_table1,
)

BENCHMARKS = list(PAPER_TABLE1)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_table1_row(benchmark, name):
    row = benchmark(characterize_benchmark, name)
    assert row.w == row.cjmps + 32 * row.consts + 4 * row.bbs  # Eq. 1


def test_table1_full(benchmark, capsys):
    rows = benchmark.pedantic(generate_table1, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table1(rows))
    # Shape assertions against the paper's Table 1:
    by_name = {r.benchmark: r for r in rows}
    # viterbi has by far the most constants and the largest W.
    assert by_name["viterbi"].consts == max(r.consts for r in rows)
    assert by_name["viterbi"].w == max(r.w for r in rows)
    # sobel is the smallest benchmark (fewest lines, branches, W).
    assert by_name["sobel"].w == min(r.w for r in rows)
    assert by_name["sobel"].cjmps == min(r.cjmps for r in rows)
    # backprop has the most branches after inlining (paper: 11).
    assert by_name["backprop"].cjmps >= by_name["gsm"].cjmps

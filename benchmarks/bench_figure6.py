"""Experiment F6 — regenerate Figure 6 (normalized area overhead).

Paper reference: Figure 6 plots, per benchmark, the logic-synthesis
area of {baseline, +branches, +constants, +DFG variants}, normalized
to the baseline.  Reported shape: branch masking is practically free,
constants cost ~10 % average, DFG variants ~21 % average with backprop
worst (>30 %).
"""

import pytest

from repro.evaluation.figure6 import (
    PAPER_FIGURE6,
    format_figure6,
    generate_figure6,
    measure_benchmark,
)

BENCHMARKS = list(PAPER_FIGURE6)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_figure6_row(benchmark, name):
    row = benchmark.pedantic(measure_benchmark, args=(name,), rounds=1, iterations=1)
    # Per-benchmark shape: branches free, DFG dominates branches.
    assert row.branches_overhead < 0.02
    assert row.dfg_overhead > row.branches_overhead
    assert row.constants_overhead > 0.0


def test_figure6_full(benchmark, capsys):
    rows = benchmark.pedantic(generate_figure6, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_figure6(rows))
    by_name = {r.benchmark: r for r in rows}
    n = len(rows)
    avg_branches = sum(r.branches_overhead for r in rows) / n
    avg_constants = sum(r.constants_overhead for r in rows) / n
    avg_dfg = sum(r.dfg_overhead for r in rows) / n
    # Paper-shape assertions:
    assert avg_branches < 0.02  # "practically no area impact"
    assert 0.03 < avg_constants < 0.30  # paper average ~10 %
    assert 0.10 < avg_dfg < 0.45  # paper average ~21 %
    assert avg_dfg > avg_constants > avg_branches  # ordering of the bars
    # backprop shows the largest DFG-variant overhead (paper: >30 %).
    assert by_name["backprop"].dfg_overhead == max(r.dfg_overhead for r in rows)
    assert by_name["backprop"].dfg_overhead > 0.30

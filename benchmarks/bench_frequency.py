"""Experiment P2 — achievable-frequency impact (paper §4.2).

Paper reference: target frequency drops ~8 % on average with DFG
variants (extra multiplexers), <1 % with branch masking (one XOR in
the next-state logic) and ~4 % with constant obfuscation (larger
muxes, slightly longer critical path), with the variant penalty
proportional to the key bits per block.
"""

import pytest

from repro.evaluation.overhead import (
    format_frequency_rows,
    measure_frequency,
)

BENCHMARKS = ["gsm", "adpcm", "sobel", "backprop", "viterbi"]


@pytest.mark.parametrize("name", BENCHMARKS)
def test_frequency_row(benchmark, name):
    row = benchmark.pedantic(measure_frequency, args=(name,), rounds=1, iterations=1)
    ratios = row.ratios()
    assert ratios["branches"] > 0.99  # <1 % loss
    assert 0.85 < ratios["constants"] <= 1.0  # a few percent
    assert 0.80 < ratios["dfg"] <= 1.0  # largest impact


def test_frequency_suite_shape(benchmark, capsys):
    def sweep():
        return [measure_frequency(name) for name in BENCHMARKS]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_frequency_rows(rows))
    n = len(rows)
    avg_branches = sum(r.ratios()["branches"] for r in rows) / n
    avg_constants = sum(r.ratios()["constants"] for r in rows) / n
    avg_dfg = sum(r.ratios()["dfg"] for r in rows) / n
    assert avg_branches > 0.99  # paper: negligible (<1 %)
    assert avg_constants >= avg_dfg  # constants lighter than variants
    assert 0.85 < avg_dfg < 1.0  # paper: ~8 % average loss

"""Unit tests for function inlining."""

import pytest

from repro.frontend import compile_c
from repro.ir.instructions import Opcode
from repro.ir.verifier import verify_module
from repro.opt.inline import inline_module
from repro.sim.interpreter import run_function


def inline_and_check(source, func, args=(), arrays=None):
    module = compile_c(source)
    before = run_function(module, func, args, dict(arrays) if arrays else None)
    inline_module(module)
    verify_module(module)
    after = run_function(module, func, args, dict(arrays) if arrays else None)
    assert before.return_value == after.return_value
    for name in before.arrays:
        if name in after.arrays:
            assert before.arrays[name] == after.arrays[name]
    return module, after


class TestInlining:
    def test_simple_scalar_call(self):
        module, result = inline_and_check(
            "int sq(int x) { return x * x; } int f(int a) { return sq(a) + 1; }",
            "f",
            [4],
        )
        func = module.function("f")
        assert not any(i.opcode is Opcode.CALL for i in func.instructions())
        assert result.return_value == 17

    def test_multiple_call_sites(self):
        module, result = inline_and_check(
            "int inc(int x) { return x + 1; } int f(int a) { return inc(a) + inc(a * 2); }",
            "f",
            [10],
        )
        assert result.return_value == 11 + 21

    def test_nested_calls(self):
        module, result = inline_and_check(
            """
            int a1(int x) { return x + 1; }
            int a2(int x) { return a1(x) * 2; }
            int f(int v) { return a2(v) + a1(v); }
            """,
            "f",
            [5],
        )
        assert result.return_value == 12 + 6
        assert "f" in module.functions

    def test_void_callee(self):
        module, result = inline_and_check(
            """
            void store(int a[4], int i, int v) { a[i] = v; }
            int f(int buf[4]) { store(buf, 1, 42); return buf[1]; }
            """,
            "f",
            [],
            {"buf": [0, 0, 0, 0]},
        )
        assert result.return_value == 42

    def test_array_binding(self):
        module, result = inline_and_check(
            """
            int total(int a[4]) { int s = 0; for (int i = 0; i < 4; i++) s += a[i]; return s; }
            int f(int xs[4], int ys[4]) { return total(xs) - total(ys); }
            """,
            "f",
            [],
            {"xs": [5, 5, 5, 5], "ys": [1, 1, 1, 1]},
        )
        assert result.return_value == 16

    def test_callee_rom_shared_across_call_sites(self):
        module, result = inline_and_check(
            """
            int pick(int i) { int rom[4] = {10, 20, 30, 40}; return rom[i]; }
            int f() { return pick(1) + pick(3); }
            """,
            "f",
        )
        assert result.return_value == 60
        func = module.function("f")
        # Read-only initialized arrays are immutable: both call sites
        # share one ROM clone instead of duplicating the table.
        assert len(func.local_arrays()) == 1

    def test_callee_writable_arrays_cloned_per_site(self):
        module, result = inline_and_check(
            """
            int scratch(int v) {
              int buf[2];
              buf[0] = v;
              buf[1] = v * 2;
              return buf[0] + buf[1];
            }
            int f() { return scratch(1) + scratch(10); }
            """,
            "f",
        )
        assert result.return_value == 3 + 30
        func = module.function("f")
        # Written arrays carry per-invocation state: one clone per site.
        assert len(func.local_arrays()) == 2

    def test_early_return_in_callee(self):
        module, result = inline_and_check(
            """
            int clamp(int x) { if (x > 10) return 10; return x; }
            int f(int a) { return clamp(a) + clamp(a + 20); }
            """,
            "f",
            [3],
        )
        assert result.return_value == 13

    def test_callee_with_loop(self):
        module, result = inline_and_check(
            """
            int fact(int n) { int r = 1; for (int i = 2; i <= n; i++) r *= i; return r; }
            int f(int n) { return fact(n) + fact(3); }
            """,
            "f",
            [5],
        )
        assert result.return_value == 126

    def test_uncalled_helpers_dropped_only_when_unreferenced(self):
        module = compile_c(
            "int h(int x) { return x; } int f(int a) { return h(a); }"
        )
        inline_module(module)
        # 'h' becomes uncalled after inlining and is pruned; 'f' remains.
        assert "f" in module.functions

    def test_recursion_rejected(self):
        from repro.ir.function import Function, Module
        from repro.ir.instructions import Instruction
        from repro.ir.types import VOID

        module = Module("m")
        func = Function("r", VOID)
        block = func.new_block("entry")
        block.append(Instruction(Opcode.CALL, callee="r"))
        block.append(Instruction(Opcode.RET))
        module.add_function(func)
        with pytest.raises(ValueError, match="recursive"):
            inline_module(module)


class TestCloneNameDeterminism:
    """Clone ids derive from the module, not a process-global counter.

    A global counter made inlined block names depend on what else was
    compiled earlier in the process — and since the DFG-variant pass
    seeds its decoy RNG from block names, obfuscated designs (and
    campaign JSON) silently depended on the process layout.
    """

    CALLER = (
        "int helper(int x) { return x + 1; }\n"
        "int top(int a) { return helper(a) + helper(a + 2); }\n"
    )
    OTHER = (
        "int h2(int x) { return x - 1; }\n"
        "int t2(int a) { return h2(h2(h2(a))); }\n"
    )

    def _inlined_names(self):
        module = compile_c(self.CALLER)
        inline_module(module)
        func = module.function("top")
        return list(func.blocks), list(func.arrays)

    def test_names_independent_of_prior_inlining(self):
        first = self._inlined_names()
        # Shift what a process-global counter would count.
        for _ in range(3):
            other = compile_c(self.OTHER)
            inline_module(other)
        assert self._inlined_names() == first
        assert any(".inl0" in name for name in first[0])

    def test_reinlining_does_not_collide(self):
        module = compile_c(self.CALLER)
        inline_module(module)
        names = set(module.function("top").blocks)
        # A second pass over the already-inlined module finds no calls
        # and must not disturb (or collide with) the existing clones.
        assert not inline_module(module)
        assert set(module.function("top").blocks) == names

"""Unit tests for semantic analysis."""

import pytest

from repro.frontend.parser import parse
from repro.frontend.semantic import SemanticError, analyze


def check(source):
    analyze(parse(source))


class TestValidPrograms:
    @pytest.mark.parametrize(
        "source",
        [
            "int f(int x) { return x; }",
            "int f() { int x = 1; { int y = x; return y; } return x; }",
            "void f(int a[4]) { a[0] = 1; }",
            "int g(int x) { return x; } int f() { return g(3); }",
            "void f() { for (int i = 0; i < 4; i++) { if (i) continue; break; } }",
            "int f(int a[4]) { int s = 0; while (s < 3) s += a[s]; return s; }",
        ],
    )
    def test_accepted(self, source):
        check(source)


class TestScopeErrors:
    def test_undeclared_use(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check("int f() { return x; }")

    def test_undeclared_assignment(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check("void f() { x = 1; }")

    def test_redeclaration_same_scope(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check("void f() { int x; int x; }")

    def test_shadowing_in_inner_scope_allowed(self):
        check("void f() { int x; { int x; } }")

    def test_inner_scope_not_visible_outside(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check("int f() { { int y = 1; } return y; }")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError, match="duplicate"):
            check("void f() { } void f() { }")


class TestArrayErrors:
    def test_scalar_indexed(self):
        with pytest.raises(SemanticError, match="not an array"):
            check("int f() { int x; return x[0]; }")

    def test_array_without_index(self):
        with pytest.raises(SemanticError, match="without index"):
            check("int f(int a[4]) { return a; }")

    def test_whole_array_assignment(self):
        with pytest.raises(SemanticError, match="whole array"):
            check("void f(int a[4]) { a = 1; }")

    def test_too_many_initializers(self):
        with pytest.raises(SemanticError, match="initializers"):
            check("void f() { int a[2] = {1, 2, 3}; }")

    def test_zero_size_array(self):
        with pytest.raises(SemanticError, match="size"):
            # parse accepts literal 0; semantics rejects it
            check("void f() { int a[0]; }")


class TestControlFlowErrors:
    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            check("void f() { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue"):
            check("void f() { continue; }")

    def test_break_in_if_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            check("void f() { if (1) break; }")


class TestReturnErrors:
    def test_missing_return_value(self):
        with pytest.raises(SemanticError, match="must return"):
            check("int f() { return; }")

    def test_void_returning_value(self):
        with pytest.raises(SemanticError, match="void"):
            check("void f() { return 1; }")

    def test_may_not_return(self):
        with pytest.raises(SemanticError, match="may not return"):
            check("int f(int x) { if (x) return 1; }")

    def test_if_else_both_return_ok(self):
        check("int f(int x) { if (x) return 1; else return 0; }")


class TestCallErrors:
    def test_unknown_function(self):
        with pytest.raises(SemanticError, match="unknown function"):
            check("int f() { return g(); }")

    def test_wrong_arity(self):
        with pytest.raises(SemanticError, match="expects"):
            check("int g(int a) { return a; } int f() { return g(1, 2); }")

    def test_array_arg_must_be_array(self):
        with pytest.raises(SemanticError, match="array"):
            check("int g(int a[4]) { return a[0]; } int f() { int x; return g(x); }")

    def test_array_arg_must_be_name(self):
        with pytest.raises(SemanticError, match="name"):
            check("int g(int a[4]) { return a[0]; } int f() { return g(1 + 2); }")

#!/usr/bin/env python3
"""CI gate: the compiled FSMD engine must change speed, never results.

Given two campaign JSON documents produced from the same spec with
``--engine compiled`` and ``--engine interp``, assert the engine
determinism contract: outside the ``cache`` telemetry block (which
legitimately differs when the runs share a warm cache directory), the
two documents are **byte-identical** — per-trial outputs, Hamming
fractions, cycle counts, completed flags, seeds and stage telemetry
all match bit for bit.

Usage: ``check_engine_parity.py compiled.json interp.json``; exits
non-zero with a diagnostic when the contract is violated.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from check_warm_cache import result_fields  # noqa: E402


def compare_engines(compiled: dict, interp: dict) -> list[str]:
    """Contract violations between same-spec compiled/interp documents."""
    problems: list[str] = []
    compiled_text = result_fields(compiled)
    interp_text = result_fields(interp)
    if compiled_text != interp_text:
        for line_a, line_b in zip(
            compiled_text.splitlines(), interp_text.splitlines()
        ):
            if line_a != line_b:
                problems.append(
                    "result fields differ between engines: first "
                    f"divergence {line_a.strip()!r} (compiled) vs "
                    f"{line_b.strip()!r} (interp)"
                )
                break
        else:
            problems.append(
                "result fields differ between engines (document lengths)"
            )
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    compiled = json.loads(Path(argv[1]).read_text())
    interp = json.loads(Path(argv[2]).read_text())
    problems = compare_engines(compiled, interp)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    units = len(compiled.get("units", []))
    print(
        f"engine parity holds: {units} unit(s) byte-identical between "
        "the compiled engine and the reference interpreter"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

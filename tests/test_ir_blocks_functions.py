"""Unit tests for basic blocks, functions, modules and the verifier."""

import pytest

from repro.ir.basic_block import BasicBlock
from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import INT32, VOID, ArrayType
from repro.ir.values import ArrayValue, Temp, Variable, const
from repro.ir.verifier import VerificationError, verify_function, verify_module


def jump(target):
    return Instruction(Opcode.JUMP, targets=[target])


class TestBasicBlock:
    def test_append_and_terminator(self):
        block = BasicBlock("bb0")
        assert not block.is_terminated
        block.append(Instruction(Opcode.RET))
        assert block.is_terminated
        assert block.terminator.opcode is Opcode.RET

    def test_append_after_terminator_rejected(self):
        block = BasicBlock("bb0")
        block.append(Instruction(Opcode.RET))
        with pytest.raises(ValueError):
            block.append(Instruction(Opcode.RET))

    def test_successors(self):
        block = BasicBlock("bb0")
        block.append(Instruction(Opcode.BRANCH, operands=[const(1)], targets=["a", "b"]))
        assert block.successors() == ["a", "b"]

    def test_ret_has_no_successors(self):
        block = BasicBlock("bb0")
        block.append(Instruction(Opcode.RET))
        assert block.successors() == []

    def test_body_excludes_terminator(self):
        block = BasicBlock("bb0")
        block.append(Instruction(Opcode.MOV, result=Temp(INT32), operands=[const(1)]))
        block.append(Instruction(Opcode.RET))
        assert len(block.body) == 1
        assert len(block) == 2

    def test_datapath_ops(self):
        block = BasicBlock("bb0")
        block.append(
            Instruction(Opcode.ADD, result=Temp(INT32), operands=[const(1), const(2)])
        )
        block.append(Instruction(Opcode.MOV, result=Temp(INT32), operands=[const(1)]))
        block.append(Instruction(Opcode.RET))
        assert len(block.datapath_ops()) == 1


class TestFunction:
    def test_entry_is_first_block(self):
        func = Function("f", VOID)
        first = func.new_block("entry")
        func.new_block("other")
        assert func.entry is first

    def test_new_block_names_unique(self):
        func = Function("f", VOID)
        names = {func.new_block("bb").name for _ in range(10)}
        assert len(names) == 10

    def test_duplicate_block_rejected(self):
        func = Function("f", VOID)
        block = func.new_block("bb")
        with pytest.raises(ValueError):
            func.add_block(BasicBlock(block.name))

    def test_params_classified(self):
        func = Function("f", INT32)
        func.add_param(Variable(INT32, "x", is_param=True))
        func.add_param(ArrayValue(ArrayType(INT32, 4), "buf", is_param=True))
        assert len(func.scalar_params()) == 1
        assert len(func.array_params()) == 1
        assert "buf" in func.arrays

    def test_conditional_branches(self):
        func = Function("f", VOID)
        a = func.new_block("a")
        b = func.new_block("b")
        c = func.new_block("c")
        a.append(Instruction(Opcode.BRANCH, operands=[const(1)], targets=[b.name, c.name]))
        b.append(Instruction(Opcode.RET))
        c.append(Instruction(Opcode.RET))
        assert len(func.conditional_branches()) == 1

    def test_returns_value(self):
        assert Function("f", INT32).returns_value
        assert not Function("g", VOID).returns_value


class TestModule:
    def test_add_and_get(self):
        module = Module("m")
        func = Function("f", VOID)
        module.add_function(func)
        assert module.function("f") is func
        assert module.get("missing") is None

    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function(Function("f", VOID))
        with pytest.raises(ValueError):
            module.add_function(Function("f", VOID))

    def test_iteration_order(self):
        module = Module("m")
        module.add_function(Function("a", VOID))
        module.add_function(Function("b", VOID))
        assert [f.name for f in module] == ["a", "b"]


class TestVerifier:
    def make_valid(self):
        module = Module("m")
        func = Function("f", INT32)
        block = func.new_block("entry")
        block.append(Instruction(Opcode.RET, operands=[const(0)]))
        module.add_function(func)
        return module, func

    def test_valid_module_passes(self):
        module, __ = self.make_valid()
        verify_module(module)

    def test_missing_terminator(self):
        module, func = self.make_valid()
        func.new_block("open")
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(module)

    def test_unknown_branch_target(self):
        module, func = self.make_valid()
        func.entry.instructions[-1] = Instruction(Opcode.JUMP, targets=["nowhere"])
        with pytest.raises(VerificationError, match="nowhere"):
            verify_module(module)

    def test_ret_without_value_in_int_function(self):
        module, func = self.make_valid()
        func.entry.instructions[-1] = Instruction(Opcode.RET)
        with pytest.raises(VerificationError, match="ret"):
            verify_module(module)

    def test_void_function_returning_value(self):
        module = Module("m")
        func = Function("f", VOID)
        block = func.new_block("entry")
        block.append(Instruction(Opcode.RET, operands=[const(0)]))
        module.add_function(func)
        with pytest.raises(VerificationError, match="void"):
            verify_module(module)

    def test_unknown_array(self):
        module, func = self.make_valid()
        stray = ArrayValue(ArrayType(INT32, 4), "stray")
        func.entry.instructions.insert(
            0,
            Instruction(Opcode.LOAD, result=Temp(INT32), operands=[const(0)], array=stray),
        )
        with pytest.raises(VerificationError, match="stray"):
            verify_function(func, module)

    def test_call_to_unknown_function(self):
        module, func = self.make_valid()
        func.entry.instructions.insert(
            0, Instruction(Opcode.CALL, operands=[], callee="ghost")
        )
        with pytest.raises(VerificationError, match="ghost"):
            verify_module(module)

    def test_terminator_mid_block(self):
        module, func = self.make_valid()
        func.entry.instructions.insert(0, Instruction(Opcode.RET, operands=[const(1)]))
        with pytest.raises(VerificationError, match="not at block end"):
            verify_module(module)

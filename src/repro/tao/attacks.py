"""Back-compat shim: the attack engine moved to :mod:`repro.attack`.

The attack-surface analyses that lived here grew into a full
subsystem — oracle-guided iterative key recovery, hill-climbing,
brute-force resistance curves, and a validated result contract — now
organized under :mod:`repro.attack` (one module per adversary class).
Every public name is re-exported so existing imports keep working;
new code should import from :mod:`repro.attack` directly.
"""

from repro.attack import (  # noqa: F401
    COST_FIELDS,
    TRACTABLE_SLICE_BITS,
    AttackResultError,
    HillClimbResult,
    KeyBitPartition,
    KeySensitivityResult,
    OracleGuidedResult,
    RandomKeyAttackResult,
    ReplicationLeakResult,
    ResistanceCurveResult,
    SliceBruteForceResult,
    attack_names,
    brute_force_slice_with_oracle,
    hill_climb_attack,
    inapplicable,
    zero_cost,
    key_sensitivity_analysis,
    oracle_guided_attack,
    partition_key_bits,
    random_key_attack,
    replication_leak_analysis,
    resistance_curve,
    run_attack,
    validate_attack_result,
)

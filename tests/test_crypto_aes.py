"""AES tests: FIPS-197 known-answer vectors plus property checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
KEY128 = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
KEY192 = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
KEY256 = bytes.fromhex(
    "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
)


class TestKnownAnswers:
    """FIPS-197 Appendix C example vectors."""

    def test_aes128(self):
        assert (
            AES(KEY128).encrypt_block(PLAINTEXT).hex()
            == "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    def test_aes192(self):
        assert (
            AES(KEY192).encrypt_block(PLAINTEXT).hex()
            == "dda97ca4864cdfe06eaf70a0ec0d7191"
        )

    def test_aes256(self):
        assert (
            AES(KEY256).encrypt_block(PLAINTEXT).hex()
            == "8ea2b7ca516745bfeafc49904b496089"
        )

    def test_aes128_appendix_b(self):
        # FIPS-197 Appendix B example.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert AES(key).encrypt_block(pt).hex() == "3925841d02dc09fbdc118597196a0b32"


class TestSbox:
    def test_sbox_values(self):
        # Canonical corner entries of the AES S-box.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value


class TestBlockOps:
    def test_decrypt_inverts_encrypt(self):
        cipher = AES(KEY256)
        assert cipher.decrypt_block(cipher.encrypt_block(PLAINTEXT)) == PLAINTEXT

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            AES(KEY128).encrypt_block(b"tiny")

    def test_ecb_multiblock_roundtrip(self):
        cipher = AES(KEY128)
        data = bytes(range(48))
        assert cipher.decrypt_ecb(cipher.encrypt_ecb(data)) == data

    def test_ecb_rejects_partial_block(self):
        with pytest.raises(ValueError):
            AES(KEY128).encrypt_ecb(b"123")


class TestCtrMode:
    def test_ctr_roundtrip_any_length(self):
        cipher = AES(KEY256)
        data = b"working-key bits!"  # 17 bytes, not block aligned
        assert cipher.encrypt_ctr(cipher.encrypt_ctr(data)) == data

    def test_ctr_nonce_changes_stream(self):
        cipher = AES(KEY256)
        data = bytes(16)
        assert cipher.encrypt_ctr(data, nonce=0) != cipher.encrypt_ctr(data, nonce=1)

    def test_keystream_length(self):
        assert len(AES(KEY128).ctr_keystream(0, 33)) == 33

    def test_different_keys_different_streams(self):
        other = bytes([KEY256[0] ^ 1]) + KEY256[1:]
        assert AES(KEY256).ctr_keystream(0, 32) != AES(other).ctr_keystream(0, 32)


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=32, max_size=32))
def test_property_encrypt_decrypt_roundtrip(block, key):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_property_encryption_is_injective(block_a, block_b):
    cipher = AES(KEY128)
    if block_a != block_b:
        assert cipher.encrypt_block(block_a) != cipher.encrypt_block(block_b)

"""Combined-report generator: runs the whole evaluation and renders a
single markdown document (the machine-generated companion to
EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from repro.evaluation.figure6 import format_figure6, generate_figure6
from repro.evaluation.keymgmt_eval import format_keymgmt, generate_keymgmt
from repro.evaluation.overhead import (
    format_frequency_rows,
    measure_frequency,
    measure_latency,
)
from repro.evaluation.table1 import format_table1, generate_table1
from repro.evaluation.validation import format_validation, validate_suite

BENCHMARK_NAMES = ["gsm", "adpcm", "sobel", "backprop", "viterbi"]


def generate_report(n_validation_keys: int = 10) -> str:
    """Run every experiment and return the markdown report text."""
    started = time.time()
    sections = [
        "# TAO reproduction — machine-generated evaluation report",
        "",
        "## T1 — Table 1",
        "```",
        format_table1(generate_table1()),
        "```",
        "",
        "## F6 — Figure 6",
        "```",
        format_figure6(generate_figure6()),
        "```",
        "",
        "## P1 — latency with the correct key",
        "```",
    ]
    for name in BENCHMARK_NAMES:
        row = measure_latency(name)
        sections.append(
            f"{name:<10} baseline {row.baseline_cycles:>6} cycles, "
            f"obfuscated {row.obfuscated_cycles:>6} cycles "
            f"({100 * row.overhead:+.2f}%)"
        )
    sections += [
        "```",
        "",
        "## P2 — frequency impact",
        "```",
        format_frequency_rows([measure_frequency(n) for n in BENCHMARK_NAMES]),
        "```",
        "",
        "## K1 — key management",
        "```",
        format_keymgmt(generate_keymgmt()),
        "```",
        "",
        f"## V1/V2 — key validation ({n_validation_keys} keys per benchmark)",
        "```",
        format_validation(validate_suite(n_keys=n_validation_keys)),
        "```",
        "",
        f"_Generated in {time.time() - started:.0f}s._",
        "",
    ]
    return "\n".join(sections)


def write_report(
    path: Path | str, n_validation_keys: int = 10
) -> Path:
    """Generate the report and write it to ``path``."""
    path = Path(path)
    path.write_text(generate_report(n_validation_keys))
    return path

"""Tests for the attack-engine subsystem (repro.attack): the result
contract and its validating funnel, the oracle-guided key-recovery
attacker (including the paper's central pruning asymmetry), the
hill-climbing attacker, brute-force resistance curves, and the
back-compat shim in repro.tao.attacks."""

import json

import pytest

from repro.attack import (
    AttackResultError,
    attack_names,
    hill_climb_attack,
    inapplicable,
    oracle_guided_attack,
    partition_key_bits,
    resistance_curve,
    run_attack,
    validate_attack_result,
    zero_cost,
)
from repro.attack.oracle_guided import (
    CONVERGED,
    POPULATION_REFUTED,
    TRACTABLE_SLICE_BITS,
)
from repro.sim import Testbench
from repro.tao import ObfuscationParameters
from repro.tao.flow import obfuscate_source

# One straight-line block, 8-bit selector, 256 variants: under the
# dfg-only pipeline the tractable bits are the WHOLE working key and a
# 256-candidate pool encloses the true key; under the full pipeline
# two 32-bit constant slices dwarf them (see TestPruningAsymmetry).
SOURCE = "int kernel(int a, int b) { int x = a * 3 + b; int y = x * x - a; return y + 7; }"
PARAMS = ObfuscationParameters(block_bits=8, max_variants_per_block=256)
BENCHES = [Testbench(args=[3, 5]), Testbench(args=[-2, 9])]


@pytest.fixture(scope="module")
def dfg_component():
    return obfuscate_source(SOURCE, "kernel", params=PARAMS, pipeline="dfg")


@pytest.fixture(scope="module")
def full_component():
    return obfuscate_source(SOURCE, "kernel", params=PARAMS, pipeline="full")


class TestResultContract:
    def _valid(self):
        return {
            "name": "probe",
            "applicable": True,
            "cost": {"oracle_queries": 1, "simulated_trials": 2, "iterations": 3},
            "outcome": {"value": 1},
        }

    def test_valid_result_passes_through(self):
        result = self._valid()
        assert validate_attack_result("probe", result) is result

    def test_inapplicable_helper_is_valid(self):
        block = inapplicable("probe", "no key bits")
        assert validate_attack_result("probe", block) is block
        assert block["cost"] == zero_cost()
        assert block["outcome"] == {}

    def test_non_dict_rejected(self):
        with pytest.raises(AttackResultError, match="expected a dict"):
            validate_attack_result("probe", [1, 2])

    def test_name_must_echo(self):
        result = self._valid()
        result["name"] = "other"
        with pytest.raises(AttackResultError, match="must echo the registered"):
            validate_attack_result("probe", result)

    def test_applicable_must_be_bool(self):
        result = self._valid()
        result["applicable"] = 1
        with pytest.raises(AttackResultError, match="must be a bool"):
            validate_attack_result("probe", result)

    def test_missing_cost_counter_rejected(self):
        result = self._valid()
        del result["cost"]["iterations"]
        with pytest.raises(AttackResultError, match="iterations"):
            validate_attack_result("probe", result)

    def test_negative_and_bool_counters_rejected(self):
        result = self._valid()
        result["cost"]["oracle_queries"] = -1
        with pytest.raises(AttackResultError, match="non-negative"):
            validate_attack_result("probe", result)
        result["cost"]["oracle_queries"] = True
        with pytest.raises(AttackResultError, match="non-negative"):
            validate_attack_result("probe", result)

    def test_inapplicable_needs_reason(self):
        result = self._valid()
        result["applicable"] = False
        with pytest.raises(AttackResultError, match="reason"):
            validate_attack_result("probe", result)

    def test_unserializable_outcome_rejected(self):
        result = self._valid()
        result["outcome"]["bad"] = object()
        with pytest.raises(AttackResultError, match="not JSON-serializable"):
            validate_attack_result("probe", result)

    def test_nan_rejected(self):
        result = self._valid()
        result["outcome"]["bad"] = float("nan")
        with pytest.raises(AttackResultError, match="not JSON-serializable"):
            validate_attack_result("probe", result)

    def test_funnel_rejects_garbage_plugin(self, dfg_component):
        """A plugin attack returning an ad-hoc dict fails loudly at the
        run_attack funnel instead of serializing into campaigns."""
        from repro.registry import REGISTRY

        name = "garbage-probe"
        REGISTRY.register(
            "attack", name, lambda c, b, *, seed=0, engine=None: {"hit": 1}
        )
        try:
            with pytest.raises(AttackResultError, match="garbage-probe"):
                run_attack(name, dfg_component, BENCHES)
        finally:
            REGISTRY.unregister("attack", name)

    def test_every_builtin_is_registered(self):
        names = attack_names()
        for name in (
            "random-key",
            "key-sensitivity",
            "slice-brute-force",
            "replication-leak",
            "oracle-guided",
            "hill-climb",
            "resistance-curve",
        ):
            assert name in names


class TestKeyBitPartition:
    def test_dfg_pipeline_fully_tractable(self, dfg_component):
        partition = partition_key_bits(dfg_component)
        assert partition.intractable == []
        assert len(partition.tractable) == dfg_component.working_key_bits
        assert len(partition.tractable) == 8

    def test_full_pipeline_constants_intractable(self, full_component):
        partition = partition_key_bits(full_component)
        config = full_component.design.key_config
        constant_bits = sum(width for _, width in config.constant_slices)
        assert constant_bits > TRACTABLE_SLICE_BITS
        assert len(partition.intractable) >= constant_bits
        assert len(partition.tractable) == 8
        # Partition covers the whole layout exactly once.
        combined = sorted(partition.tractable + partition.intractable)
        assert combined == list(range(config.working_key_bits))


class TestPruningAsymmetry:
    """The acceptance pair: a 256-candidate pool prunes >= 90 % when
    only the DFG is obfuscated and ~0 % against the full pipeline."""

    def test_unobfuscated_constants_cell_prunes(self, dfg_component):
        result = oracle_guided_attack(
            dfg_component, BENCHES, pool_size=256, max_queries=8, seed=1
        )
        assert result.pool_size == 256  # exhaustive enumeration
        assert result.pool_pruned_fraction >= 0.90
        assert result.stall_reason == CONVERGED
        assert result.key_recovered
        assert result.recovered_bits == 8
        assert result.informative_queries >= 1
        # The keys-eliminated-per-query curve is monotone in survivors.
        survivors = [entry["survivors"] for entry in result.curve]
        assert survivors == sorted(survivors, reverse=True)
        assert sum(e["eliminated"] for e in result.curve) == 256 - result.survivors

    def test_full_pipeline_refutes_population(self, full_component):
        result = oracle_guided_attack(
            full_component, BENCHES, pool_size=256, max_queries=8, seed=1
        )
        assert result.pool_pruned_fraction == 0.0
        assert result.stall_reason == POPULATION_REFUTED
        assert not result.key_recovered
        assert result.recovered_bits == 0
        assert result.informative_queries == 0
        assert result.refuted_queries >= 1
        # Refuted queries still cost oracle access.
        assert result.oracle_queries == result.refuted_queries

    def test_deterministic_and_engine_independent(self, dfg_component):
        runs = [
            oracle_guided_attack(
                dfg_component, BENCHES, pool_size=64, max_queries=4,
                seed=5, engine=engine,
            )
            for engine in ("compiled", "interp", "codegen")
        ]
        blobs = {json.dumps(r.__dict__, sort_keys=True) for r in runs}
        assert len(blobs) == 1

    def test_constants_only_cell_is_inapplicable(self):
        """A constants-only pipeline leaves no tractable bits to
        enumerate: the adapter degrades to an inapplicable block
        instead of raising into the campaign."""
        component = obfuscate_source(
            SOURCE, "kernel", params=PARAMS, pipeline="constants"
        )
        partition = partition_key_bits(component)
        assert partition.tractable == []
        result = run_attack("oracle-guided", component, BENCHES)
        assert result["applicable"] is False
        assert "tractable" in result["reason"]
        assert result["cost"] == zero_cost()


class TestHillClimb:
    def test_walk_descends_and_is_deterministic(self, dfg_component):
        a = hill_climb_attack(
            dfg_component, BENCHES, restarts=2, max_rounds=4, seed=3
        )
        b = hill_climb_attack(
            dfg_component, BENCHES, restarts=2, max_rounds=4, seed=3
        )
        assert a == b
        assert a.restarts == 2
        assert len(a.trajectories) == 2
        for trajectory in a.trajectories:
            # Every accepted move is a strict improvement.
            assert all(
                later < earlier
                for earlier, later in zip(trajectory, trajectory[1:])
            )
        assert a.best_hamming == min(min(t) for t in a.trajectories)

    def test_no_gradient_on_full_pipeline(self, full_component):
        """TAO's flat corruption margin leaves the climber far from
        the key: §4.3's no-usable-gradient claim."""
        result = hill_climb_attack(
            full_component, BENCHES, restarts=2, max_rounds=4, seed=3
        )
        assert not result.recovered
        assert result.best_hamming > 0.0
        assert result.best_key_distance > 0

    def test_restart_validation(self, dfg_component):
        with pytest.raises(ValueError, match="at least one restart"):
            hill_climb_attack(dfg_component, BENCHES, restarts=0)


class TestResistanceCurve:
    def test_cdf_shape_and_coverage(self, full_component):
        result = resistance_curve(full_component, BENCHES, n_trials=32, seed=2)
        assert result.keys_tried == 32
        assert result.keys_unlocking == 0  # no wrong key unlocks (§4.3)
        assert result.cdf_edges[0] == 0.0
        assert result.cdf_edges[-1] == 1.0
        assert result.cdf[-1] == 1.0
        # CDF is monotone non-decreasing.
        assert all(a <= b for a, b in zip(result.cdf, result.cdf[1:]))
        # Coverage exponent is deeply negative: 32 keys of a 2^K space.
        assert result.coverage_log2 == pytest.approx(
            5 - full_component.locking_key.width
        )
        assert 0.0 < result.mean_corruption <= 1.0

    def test_lane_layout_invariance(self, full_component, monkeypatch):
        baseline = resistance_curve(full_component, BENCHES, n_trials=16, seed=2)
        monkeypatch.setenv("REPRO_KEY_BATCH_LANES", "3")
        skinny = resistance_curve(full_component, BENCHES, n_trials=16, seed=2)
        assert baseline == skinny

    def test_trial_validation(self, full_component):
        with pytest.raises(ValueError, match="at least one wrong key"):
            resistance_curve(full_component, BENCHES, n_trials=0)


class TestAdapters:
    @pytest.mark.parametrize(
        "name", ["oracle-guided", "hill-climb", "resistance-curve"]
    )
    def test_contract_shape_and_serializability(self, dfg_component, name):
        result = run_attack(name, dfg_component, BENCHES, seed=1)
        assert result["name"] == name
        assert result["applicable"] is True
        assert set(result["cost"]) == {
            "oracle_queries", "simulated_trials", "iterations",
        }
        json.dumps(result, allow_nan=False)  # round-trips

    def test_oracle_guided_reports_curve(self, dfg_component):
        result = run_attack("oracle-guided", dfg_component, BENCHES, seed=1)
        outcome = result["outcome"]
        assert outcome["pool_size"] >= 1
        assert len(outcome["curve"]) == result["cost"]["oracle_queries"]
        assert result["cost"]["simulated_trials"] >= outcome["pool_size"]

    def test_resistance_curve_is_oracle_free(self, dfg_component):
        result = run_attack("resistance-curve", dfg_component, BENCHES, seed=1)
        assert result["cost"]["oracle_queries"] == 0


class TestBackCompatShim:
    def test_tao_attacks_reexports_everything(self):
        import repro.attack as attack_pkg
        import repro.tao.attacks as shim

        for name in attack_pkg.__all__:
            assert getattr(shim, name) is getattr(attack_pkg, name)

    def test_api_facade_exposes_attack_entry_points(self):
        from repro import api

        assert api.run_attack is run_attack
        assert api.attack_names is attack_names
        assert api.validate_attack_result is validate_attack_result

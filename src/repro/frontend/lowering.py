"""AST-to-IR lowering.

Walks the validated AST and emits three-address IR.  Notable semantic
choices (documented restrictions of the subset):

* ``&&`` and ``||`` are lowered arithmetically (both sides always
  evaluated) as ``(a != 0) & (b != 0)``; this matches how HLS tools
  if-convert side-effect-free conditions.
* The ternary operator lowers to a diamond of control flow writing a
  fresh variable.
* Division or remainder by zero yields 0 at simulation time (hardware
  semantics must be total).
* Integer promotion follows C: operands of binary arithmetic are
  computed in ``common_type(lhs, rhs, int)``.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.frontend.semantic import analyze
from repro.ir.builder import IRBuilder
from repro.ir.function import Function, Module
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import INT32, ArrayType, IntType, common_type
from repro.ir.values import ArrayValue, Constant, Temp, Value, Variable
from repro.ir.verifier import verify_module

_BINOP_MAP = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
    "<": Opcode.LT,
    "<=": Opcode.LE,
    ">": Opcode.GT,
    ">=": Opcode.GE,
}

_BOOL = IntType(1, signed=False)


class LoweringError(Exception):
    """Raised on constructs the lowering pass cannot handle."""


class _FunctionLowering:
    """Lowers one AST function into an IR function."""

    _fresh = itertools.count()

    def __init__(self, module: Module, func_ast: ast.FunctionDef, program: ast.Program):
        self.module = module
        self.program = program
        self.func_ast = func_ast
        self.func = Function(func_ast.name, func_ast.return_type)
        self.builder = IRBuilder(self.func)
        self.scopes: list[dict[str, Value]] = [{}]
        # (continue_target, break_target) stack for loop control.
        self.loop_stack: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, value: Value) -> None:
        self.scopes[-1][name] = value

    def lookup(self, name: str) -> Value:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise LoweringError(f"unbound name {name!r}")  # pragma: no cover

    def fresh_var(self, type_: IntType, hint: str) -> Variable:
        return Variable(type_, f"{hint}.{next(self._fresh)}")

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def lower(self) -> Function:
        for param in self.func_ast.params:
            assert isinstance(param.type, IntType)
            if param.array_size is not None:
                size = param.array_size if param.array_size > 0 else 1
                value: Value = ArrayValue(
                    ArrayType(param.type, size), param.name, is_param=True
                )
            else:
                value = Variable(param.type, param.name, is_param=True)
            self.func.add_param(value)
            self.declare(param.name, value)
        # Globals visible inside every function: const arrays/scalars are
        # materialized per function (they are ROMs after HLS).
        for decl in self.program.globals:
            self._lower_global(decl)
        entry = self.builder.new_block("entry")
        self.builder.set_block(entry)
        self.lower_body(self.func_ast.body)
        if not self.builder.block.is_terminated:
            if self.func.returns_value:
                # Semantic analysis guarantees a return on every path for
                # value-returning functions, but straight-line fallthrough
                # after a returning if-else still needs a terminator.
                zero = Constant(0, self.func.return_type)  # type: ignore[arg-type]
                self.builder.ret(zero)
            else:
                self.builder.ret()
        self._terminate_open_blocks()
        self._drop_unreferenced_globals()
        return self.func

    def _drop_unreferenced_globals(self) -> None:
        """Remove global ROM copies this function never touches."""
        referenced = {
            inst.array.name
            for inst in self.func.instructions()
            if inst.array is not None
        }
        for inst in self.func.instructions():
            for bound in inst.array_args.values():
                referenced.add(bound.name)
        global_names = {decl.name for decl in self.program.globals}
        for name in list(self.func.arrays):
            array = self.func.arrays[name]
            if array.is_param or name in referenced:
                continue
            if name in global_names:
                del self.func.arrays[name]

    def _lower_global(self, decl: ast.DeclStmt) -> None:
        assert isinstance(decl.type, IntType)
        if decl.array_size is not None:
            init = list(decl.array_init or [])
            init += [0] * (decl.array_size - len(init))
            array = ArrayValue(
                ArrayType(decl.type, decl.array_size),
                decl.name,
                initializer=init,
            )
            if decl.name not in self.func.arrays:
                self.func.add_array(array)
            self.declare(decl.name, array)
        else:
            if decl.init is None or not isinstance(decl.init, ast.NumberLit):
                raise LoweringError(
                    f"global scalar {decl.name!r} needs a literal initializer"
                )
            self.declare(decl.name, Constant(decl.init.value, decl.type))

    def _terminate_open_blocks(self) -> None:
        """Close blocks left open by break/continue/return rewiring."""
        for block in self.func.blocks.values():
            if not block.is_terminated:
                if self.func.returns_value:
                    zero = Constant(0, self.func.return_type)  # type: ignore[arg-type]
                    block.append(Instruction(Opcode.RET, operands=[zero]))
                else:
                    block.append(Instruction(Opcode.RET))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def lower_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            if self.builder.block.is_terminated:
                break  # unreachable code after return/break/continue
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.AssignStmt):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            __, break_target = self.loop_stack[-1]
            self.builder.jump(break_target)
        elif isinstance(stmt, ast.ContinueStmt):
            continue_target, __ = self.loop_stack[-1]
            self.builder.jump(continue_target)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                value = self.lower_expr(stmt.value)
                value = self._coerce(value, self.func.return_type)  # type: ignore[arg-type]
                self.builder.ret(value)
            else:
                self.builder.ret()
        else:  # pragma: no cover - defensive
            raise LoweringError(f"unhandled statement {type(stmt).__name__}")

    def _lower_decl(self, stmt: ast.DeclStmt) -> None:
        assert isinstance(stmt.type, IntType)
        if stmt.array_size is not None:
            init = None
            if stmt.array_init is not None:
                init = list(stmt.array_init)
                init += [0] * (stmt.array_size - len(init))
            name = stmt.name
            if name in self.func.arrays:
                name = f"{stmt.name}.{next(self._fresh)}"
            array = ArrayValue(
                ArrayType(stmt.type, stmt.array_size), name, initializer=init
            )
            self.func.add_array(array)
            self.declare(stmt.name, array)
            return
        var = Variable(stmt.type, self._unique_var_name(stmt.name))
        self.declare(stmt.name, var)
        if stmt.init is not None:
            value = self.lower_expr(stmt.init)
            self.builder.mov(self._coerce(value, stmt.type), var)

    def _unique_var_name(self, name: str) -> str:
        """Disambiguate shadowed declarations across scopes."""
        existing = {
            v.name
            for scope in self.scopes
            for v in scope.values()
            if isinstance(v, Variable)
        }
        if name not in existing:
            return name
        return f"{name}.{next(self._fresh)}"

    def _lower_assign(self, stmt: ast.AssignStmt) -> None:
        target = self.lookup(stmt.name)
        value = self.lower_expr(stmt.value)
        if stmt.index is not None:
            assert isinstance(target, ArrayValue)
            index = self.lower_expr(stmt.index)
            self.builder.store(target, index, self._coerce(value, target.element_type))
        else:
            assert isinstance(target, Variable)
            assert isinstance(target.type, IntType)
            self.builder.mov(self._coerce(value, target.type), target)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        cond = self._lower_condition(stmt.cond)
        if isinstance(cond, Constant):
            # Constant condition: lower only the taken side.
            body = stmt.then_body if cond.value else stmt.else_body
            self.push_scope()
            self.lower_body(body)
            self.pop_scope()
            return
        then_block = self.builder.new_block("if.then")
        merge_block = self.builder.new_block("if.end")
        if stmt.else_body:
            else_block = self.builder.new_block("if.else")
            self.builder.branch(cond, then_block.name, else_block.name)
        else:
            self.builder.branch(cond, then_block.name, merge_block.name)
        self.builder.set_block(then_block)
        self.push_scope()
        self.lower_body(stmt.then_body)
        self.pop_scope()
        if not self.builder.block.is_terminated:
            self.builder.jump(merge_block.name)
        if stmt.else_body:
            self.builder.set_block(else_block)
            self.push_scope()
            self.lower_body(stmt.else_body)
            self.pop_scope()
            if not self.builder.block.is_terminated:
                self.builder.jump(merge_block.name)
        self.builder.set_block(merge_block)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        cond_block = self.builder.new_block("while.cond")
        body_block = self.builder.new_block("while.body")
        exit_block = self.builder.new_block("while.end")
        if stmt.is_do_while:
            self.builder.jump(body_block.name)
        else:
            self.builder.jump(cond_block.name)
        self.builder.set_block(cond_block)
        cond = self._lower_condition(stmt.cond)
        self.builder.branch(cond, body_block.name, exit_block.name)
        self.builder.set_block(body_block)
        self.loop_stack.append((cond_block.name, exit_block.name))
        self.push_scope()
        self.lower_body(stmt.body)
        self.pop_scope()
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.jump(cond_block.name)
        self.builder.set_block(exit_block)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_block = self.builder.new_block("for.cond")
        body_block = self.builder.new_block("for.body")
        step_block = self.builder.new_block("for.step")
        exit_block = self.builder.new_block("for.end")
        self.builder.jump(cond_block.name)
        self.builder.set_block(cond_block)
        if stmt.cond is not None:
            cond = self._lower_condition(stmt.cond)
            self.builder.branch(cond, body_block.name, exit_block.name)
        else:
            self.builder.jump(body_block.name)
        self.builder.set_block(body_block)
        self.loop_stack.append((step_block.name, exit_block.name))
        self.push_scope()
        self.lower_body(stmt.body)
        self.pop_scope()
        self.loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.jump(step_block.name)
        self.builder.set_block(step_block)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.builder.jump(cond_block.name)
        self.builder.set_block(exit_block)
        self.pop_scope()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.NumberLit):
            width = max(32, expr.value.bit_length() + 1)
            return Constant(expr.value, IntType(width, signed=True))
        if isinstance(expr, ast.NameRef):
            return self.lookup(expr.name)
        if isinstance(expr, ast.ArrayRef):
            array = self.lookup(expr.name)
            assert isinstance(array, ArrayValue)
            index = self.lower_expr(expr.index)
            return self.builder.load(array, index)
        if isinstance(expr, ast.UnaryExpr):
            return self._lower_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._lower_binary(expr)
        if isinstance(expr, ast.TernaryExpr):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.CastExpr):
            operand = self.lower_expr(expr.operand)
            return self._coerce(operand, expr.target, force=True)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        raise LoweringError(f"unhandled expression {type(expr).__name__}")

    def _lower_unary(self, expr: ast.UnaryExpr) -> Value:
        operand = self.lower_expr(expr.operand)
        if isinstance(operand, Constant):
            folded = self._fold_unary(expr.op, operand)
            if folded is not None:
                return folded
        assert isinstance(operand.type, IntType)
        promoted = common_type(operand.type, INT32)
        if expr.op == "-":
            return self.builder.unary(Opcode.NEG, operand, promoted)
        if expr.op == "~":
            return self.builder.unary(Opcode.NOT, operand, promoted)
        if expr.op == "!":
            zero = Constant(0, operand.type)
            return self.builder.binary(Opcode.EQ, operand, zero, _BOOL)
        raise LoweringError(f"unhandled unary {expr.op!r}")  # pragma: no cover

    @staticmethod
    def _fold_unary(op: str, operand: Constant) -> Optional[Constant]:
        if op == "-":
            return Constant(-operand.value, operand.type)
        if op == "~":
            return Constant(~operand.value, operand.type)
        if op == "!":
            return Constant(0 if operand.value else 1, _BOOL)
        return None

    def _lower_binary(self, expr: ast.BinaryExpr) -> Value:
        if expr.op in ("&&", "||"):
            lhs = self._to_bool(self.lower_expr(expr.lhs))
            rhs = self._to_bool(self.lower_expr(expr.rhs))
            opcode = Opcode.AND if expr.op == "&&" else Opcode.OR
            if isinstance(lhs, Constant) and isinstance(rhs, Constant):
                if expr.op == "&&":
                    return Constant(int(bool(lhs.value and rhs.value)), _BOOL)
                return Constant(int(bool(lhs.value or rhs.value)), _BOOL)
            return self.builder.binary(opcode, lhs, rhs, _BOOL)
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        opcode = _BINOP_MAP[expr.op]
        assert isinstance(lhs.type, IntType) and isinstance(rhs.type, IntType)
        if opcode in (
            Opcode.EQ,
            Opcode.NE,
            Opcode.LT,
            Opcode.LE,
            Opcode.GT,
            Opcode.GE,
        ):
            return self.builder.binary(opcode, lhs, rhs, _BOOL)
        if opcode in (Opcode.SHL, Opcode.SHR):
            result_type = common_type(lhs.type, INT32)
        else:
            result_type = common_type(common_type(lhs.type, rhs.type), INT32)
        return self.builder.binary(opcode, lhs, rhs, result_type)

    def _lower_ternary(self, expr: ast.TernaryExpr) -> Value:
        cond = self._lower_condition(expr.cond)
        if isinstance(cond, Constant):
            return self.lower_expr(expr.if_true if cond.value else expr.if_false)
        result = self.fresh_var(INT32, "sel")
        then_block = self.builder.new_block("sel.then")
        else_block = self.builder.new_block("sel.else")
        merge_block = self.builder.new_block("sel.end")
        self.builder.branch(cond, then_block.name, else_block.name)
        self.builder.set_block(then_block)
        true_value = self.lower_expr(expr.if_true)
        self.builder.mov(true_value, result)
        self.builder.jump(merge_block.name)
        self.builder.set_block(else_block)
        false_value = self.lower_expr(expr.if_false)
        self.builder.mov(false_value, result)
        self.builder.jump(merge_block.name)
        self.builder.set_block(merge_block)
        return result

    def _lower_call(self, expr: ast.CallExpr) -> Value:
        callee_ast = next(f for f in self.program.functions if f.name == expr.callee)
        scalar_args: list[Value] = []
        array_args: dict[str, ArrayValue] = {}
        for arg, param in zip(expr.args, callee_ast.params):
            if param.array_size is not None:
                assert isinstance(arg, ast.NameRef)
                bound = self.lookup(arg.name)
                assert isinstance(bound, ArrayValue)
                array_args[param.name] = bound
            else:
                value = self.lower_expr(arg)
                assert isinstance(param.type, IntType)
                scalar_args.append(self._coerce(value, param.type))
        result: Optional[Value] = None
        result_type: Optional[IntType] = None
        if isinstance(callee_ast.return_type, IntType):
            result_type = callee_ast.return_type
            result = Temp(result_type)
        inst = Instruction(
            Opcode.CALL,
            result=result,
            operands=scalar_args,
            callee=expr.callee,
            array_args=array_args,
        )
        self.builder.emit(inst)
        return result if result is not None else Constant(0, INT32)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _lower_condition(self, expr: ast.Expr) -> Value:
        value = self.lower_expr(expr)
        return self._to_bool(value)

    def _to_bool(self, value: Value) -> Value:
        assert isinstance(value.type, IntType)
        if isinstance(value, Constant):
            return Constant(int(bool(value.value)), _BOOL)
        if value.type == _BOOL:
            return value
        zero = Constant(0, value.type)
        return self.builder.binary(Opcode.NE, value, zero, _BOOL)

    def _coerce(self, value: Value, target: IntType, force: bool = False) -> Value:
        """Insert a width-changing MOV when types differ materially."""
        assert isinstance(value.type, IntType)
        if value.type == target:
            return value
        if isinstance(value, Constant):
            return Constant(value.value, target)
        if not force and value.type.width == target.width:
            return value
        return self.builder.unary(Opcode.MOV, value, target)


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower a validated AST program into an IR module."""
    module = Module(name)
    module.source_lines = program.source_lines
    for func_ast in program.functions:
        lowering = _FunctionLowering(module, func_ast, program)
        module.add_function(lowering.lower())
    verify_module(module)
    return module


def compile_c(source: str, name: str = "module") -> Module:
    """Front-end driver: parse, analyze and lower C-subset source."""
    program = parse(source)
    analyze(program)
    return lower_program(program, name)

"""Unit tests for CFG analyses: orderings, dominators, loops."""

import pytest

from repro.frontend import compile_c
from repro.ir.cfg import ControlFlowGraph
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Opcode
from repro.ir.types import VOID
from repro.ir.values import const
from repro.ir.basic_block import BasicBlock


def _block(func, name):
    """Add a block with an exact name (new_block appends counters)."""
    return func.add_block(BasicBlock(name))


def build_diamond():
    """entry -> (left|right) -> merge -> exit"""
    func = Function("f", VOID)
    entry = _block(func, "entry")
    left = _block(func, "left")
    right = _block(func, "right")
    merge = _block(func, "merge")
    entry.append(
        Instruction(Opcode.BRANCH, operands=[const(1)], targets=[left.name, right.name])
    )
    left.append(Instruction(Opcode.JUMP, targets=[merge.name]))
    right.append(Instruction(Opcode.JUMP, targets=[merge.name]))
    merge.append(Instruction(Opcode.RET))
    return func


def build_loop():
    """entry -> header <-> body, header -> exit"""
    func = Function("f", VOID)
    entry = _block(func, "entry")
    header = _block(func, "header")
    body = _block(func, "body")
    exit_ = _block(func, "exit")
    entry.append(Instruction(Opcode.JUMP, targets=[header.name]))
    header.append(
        Instruction(Opcode.BRANCH, operands=[const(1)], targets=[body.name, exit_.name])
    )
    body.append(Instruction(Opcode.JUMP, targets=[header.name]))
    exit_.append(Instruction(Opcode.RET))
    return func


class TestOrderings:
    def test_rpo_starts_at_entry(self):
        cfg = ControlFlowGraph(build_diamond())
        rpo = cfg.reverse_postorder()
        assert rpo[0] == "entry"
        assert rpo[-1] == "merge"

    def test_rpo_visits_all_reachable(self):
        cfg = ControlFlowGraph(build_loop())
        assert set(cfg.reverse_postorder()) == {"entry", "header", "body", "exit"}

    def test_unreachable_excluded(self):
        func = build_diamond()
        dead = func.new_block("dead")
        dead.append(Instruction(Opcode.RET))
        cfg = ControlFlowGraph(func)
        assert "dead" not in cfg.reachable()

    def test_preds(self):
        cfg = ControlFlowGraph(build_diamond())
        assert sorted(cfg.preds["merge"]) == ["left", "right"]


class TestDominators:
    def test_diamond_idoms(self):
        cfg = ControlFlowGraph(build_diamond())
        idom = cfg.immediate_dominators()
        assert idom["entry"] is None
        assert idom["left"] == "entry"
        assert idom["right"] == "entry"
        assert idom["merge"] == "entry"

    def test_dominates(self):
        cfg = ControlFlowGraph(build_diamond())
        assert cfg.dominates("entry", "merge")
        assert not cfg.dominates("left", "merge")
        assert cfg.dominates("merge", "merge")

    def test_loop_idoms(self):
        cfg = ControlFlowGraph(build_loop())
        idom = cfg.immediate_dominators()
        assert idom["body"] == "header"
        assert idom["exit"] == "header"


class TestLoops:
    def test_back_edges(self):
        cfg = ControlFlowGraph(build_loop())
        assert cfg.back_edges() == [("body", "header")]

    def test_no_back_edges_in_dag(self):
        cfg = ControlFlowGraph(build_diamond())
        assert cfg.back_edges() == []

    def test_natural_loop_members(self):
        cfg = ControlFlowGraph(build_loop())
        assert cfg.natural_loop("body", "header") == {"header", "body"}

    def test_loop_headers(self):
        cfg = ControlFlowGraph(build_loop())
        assert cfg.loop_headers() == {"header"}

    def test_blocks_in_loops_from_c(self):
        module = compile_c(
            """
            int f(int n) {
              int s = 0;
              for (int i = 0; i < n; i++) s += i;
              return s;
            }
            """
        )
        cfg = ControlFlowGraph(module.function("f"))
        in_loops = cfg.blocks_in_loops()
        assert in_loops  # the for loop produces at least cond+body+step
        assert cfg.loop_headers()


class TestErrors:
    def test_dangling_target_rejected(self):
        func = Function("f", VOID)
        entry = _block(func, "entry")
        entry.append(Instruction(Opcode.JUMP, targets=["ghost"]))
        with pytest.raises(ValueError, match="ghost"):
            ControlFlowGraph(func)

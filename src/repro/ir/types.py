"""Type system for the repro intermediate representation.

The IR uses a small, hardware-oriented type lattice: fixed-width
integers (signed or unsigned), single-dimension arrays of integers, and
``void`` for functions without a return value.  Widths are arbitrary
positive bit counts, mirroring what an HLS tool needs (bit-accurate
datapaths), rather than the C widths only.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for all IR types."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


@dataclass(frozen=True)
class VoidType(Type):
    """The type of functions that return nothing."""

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """A fixed-width two's-complement integer.

    Attributes:
        width: Bit width, at least 1.
        signed: Whether arithmetic on this type is signed.
    """

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"integer width must be >= 1, got {self.width}")

    def __str__(self) -> str:
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.width}"

    @property
    def min_value(self) -> int:
        """Smallest representable value."""
        if self.signed:
            return -(1 << (self.width - 1))
        return 0

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` modulo 2**width into this type's range."""
        mask = (1 << self.width) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= 1 << self.width
        return value

    def contains(self, value: int) -> bool:
        """Return True if ``value`` is representable without wrapping."""
        return self.min_value <= value <= self.max_value


@dataclass(frozen=True)
class ArrayType(Type):
    """A one-dimensional array of integers with a static element count."""

    element: IntType
    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"array size must be >= 1, got {self.size}")

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"


VOID = VoidType()
BOOL = IntType(1, signed=False)
INT8 = IntType(8, signed=True)
UINT8 = IntType(8, signed=False)
INT16 = IntType(16, signed=True)
UINT16 = IntType(16, signed=False)
INT32 = IntType(32, signed=True)
UINT32 = IntType(32, signed=False)
INT64 = IntType(64, signed=True)
UINT64 = IntType(64, signed=False)

#: Mapping from C-subset type keywords to IR types.
C_TYPE_NAMES = {
    "void": VOID,
    "char": INT8,
    "uchar": UINT8,
    "short": INT16,
    "ushort": UINT16,
    "int": INT32,
    "uint": UINT32,
    "long": INT64,
    "ulong": UINT64,
    "bool": BOOL,
}


def common_type(a: IntType, b: IntType) -> IntType:
    """Return the usual-arithmetic-conversion result of two int types.

    Follows C-like promotion: the wider width wins; on equal widths an
    unsigned operand makes the result unsigned.
    """
    width = max(a.width, b.width)
    if a.width == b.width:
        signed = a.signed and b.signed
    elif a.width > b.width:
        signed = a.signed
    else:
        signed = b.signed
    return IntType(width, signed)


def bits_for_value(value: int) -> int:
    """Minimum two's-complement bits needed to store ``value``."""
    if value >= 0:
        return max(1, value.bit_length() + 1)
    return max(1, (-value - 1).bit_length() + 1)

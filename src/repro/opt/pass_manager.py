"""Pass manager orchestrating IR optimization passes.

Passes are callables ``(Function, Module) -> bool`` returning whether
they changed the IR; the manager iterates function-local passes to a
fixed point, mirroring a compiler's -O pipeline.  TAO's front-end runs
this pipeline before counting constants/blocks/branches (Table 1
reports post-optimization numbers).
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

from repro.ir.function import Function, Module
from repro.ir.verifier import verify_module

FunctionPass = Callable[[Function, Module], bool]


class ModulePass(Protocol):
    """A whole-module transformation (e.g. inlining)."""

    def __call__(self, module: Module) -> bool: ...


class PassManager:
    """Runs function passes to a fixed point, then verifies the module."""

    def __init__(
        self,
        function_passes: Sequence[FunctionPass],
        max_iterations: int = 25,
        verify: bool = True,
    ) -> None:
        self.function_passes = list(function_passes)
        self.max_iterations = max_iterations
        self.verify = verify
        self.statistics: dict[str, int] = {}

    def run(self, module: Module) -> bool:
        """Apply all passes; returns True when anything changed."""
        changed_any = False
        for func in module:
            for iteration in range(self.max_iterations):
                changed = False
                for pass_fn in self.function_passes:
                    if pass_fn(func, module):
                        changed = True
                        name = getattr(pass_fn, "__name__", str(pass_fn))
                        self.statistics[name] = self.statistics.get(name, 0) + 1
                changed_any |= changed
                if not changed:
                    break
        if self.verify:
            verify_module(module)
        return changed_any


def default_pipeline() -> "PassManager":
    """The standard -O2-like pipeline used before HLS and TAO."""
    from repro.opt.algebraic import simplify_algebraic
    from repro.opt.constant_folding import fold_constants
    from repro.opt.cse import local_cse
    from repro.opt.dce import eliminate_dead_code
    from repro.opt.simplify_cfg import simplify_cfg

    return PassManager(
        [
            fold_constants,
            simplify_algebraic,
            simplify_cfg,
            local_cse,
            eliminate_dead_code,
        ]
    )


def optimize_module(module: Module, inline: bool = True) -> Module:
    """Run inlining (optional) followed by the default pipeline."""
    if inline:
        from repro.opt.inline import inline_module

        inline_module(module)
    default_pipeline().run(module)
    return module

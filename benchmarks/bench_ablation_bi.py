"""Experiment A1 — ablation: overhead versus key bits per block (B_i).

Paper reference (§4.2): both the area overhead and the frequency drop
of the DFG-variant obfuscation are "proportional to the number of key
bits assigned to each basic block because creating more variants
requires more multiplexers".  This bench sweeps B_i and checks that
monotonic trend, plus the diversity-mode ablation from DESIGN.md.
"""

import pytest

from repro.benchsuite import all_benchmarks
from repro.evaluation.overhead import frequency_vs_block_bits
from repro.rtl import estimate_area
from repro.runtime.campaign import CampaignSpec, run_campaign
from repro.tao import ObfuscationParameters, TaoFlow

BI_VALUES = [1, 2, 3, 4, 5]


def area_vs_block_bits(name, bits_values, diversity="selector"):
    bench = all_benchmarks()[name]
    baseline = TaoFlow().synthesize_baseline(bench.source, bench.top)
    baseline_area = estimate_area(baseline).total
    overheads = {}
    for bits in bits_values:
        params = ObfuscationParameters(
            obfuscate_constants=False,
            obfuscate_branches=False,
            block_bits=bits,
            variant_diversity=diversity,
        )
        component = TaoFlow(params=params).obfuscate(bench.source, bench.top)
        overheads[bits] = (
            estimate_area(component.design).total / baseline_area - 1.0
        )
    return overheads


def test_area_grows_with_block_bits(benchmark, capsys):
    overheads = benchmark.pedantic(
        area_vs_block_bits, args=("sobel", BI_VALUES), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\nsobel DFG-variant area overhead vs B_i (selector diversity):")
        for bits, overhead in overheads.items():
            print(f"  B_i={bits}: +{100 * overhead:.1f}%")
    values = [overheads[b] for b in BI_VALUES]
    # Monotone (non-decreasing) trend, as §4.2 states.
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    assert values[-1] > values[0]


def test_frequency_drops_with_block_bits(benchmark, capsys):
    ratios = benchmark.pedantic(
        frequency_vs_block_bits, args=("sobel", BI_VALUES), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\nsobel DFG-variant frequency ratio vs B_i:")
        for bits, ratio in ratios.items():
            print(f"  B_i={bits}: {100 * (ratio - 1):+.1f}%")
    values = [ratios[b] for b in BI_VALUES]
    assert all(v <= 1.0 for v in values)
    assert values[-1] <= values[0]  # more variants, never faster


def test_block_bits_sweep_functional(benchmark, capsys):
    """Every B_i cell must stay functionally locked: the campaign
    engine sweeps the ad-hoc B_i configs (``extra_configs``) with the
    §4.3 validation loop, sharing one golden run across the sweep
    (DFG variants leave the IR untouched)."""

    def sweep():
        spec = CampaignSpec(
            benchmarks=("sobel",),
            configs=("bi1", "bi4"),
            extra_configs=tuple(
                (
                    f"bi{bits}",
                    (
                        ("obfuscate_constants", False),
                        ("obfuscate_branches", False),
                        ("block_bits", bits),
                    ),
                )
                for bits in (1, 4)
            ),
            n_keys=3,
            jobs=1,  # serial: both cells share this process's cache
        )
        return run_campaign(spec, collect_cache_stats=True)

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        for unit in result.units:
            print(
                f"\nsobel[{unit.config}]: correct_ok="
                f"{unit.report.correct_key_ok} avg_HD="
                f"{100 * unit.report.average_hamming:.1f}%"
            )
    for unit in result.units:
        assert unit.report.correct_key_ok
        assert unit.report.wrong_keys_all_corrupt
        assert unit.params["block_bits"] in (1, 4)
    # One golden interpreter run served both B_i cells.
    assert result.cache["golden"]["misses"] == 1


def test_diversity_mode_ablation(benchmark, capsys):
    """DESIGN.md ablation: selector diversity >= distance diversity in area."""

    def measure():
        distance = area_vs_block_bits("sobel", [4], diversity="distance")[4]
        selector = area_vs_block_bits("sobel", [4], diversity="selector")[4]
        return distance, selector

    distance, selector = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print(
            f"\nsobel B_i=4: distance diversity +{100 * distance:.1f}%, "
            f"selector diversity +{100 * selector:.1f}%"
        )
    assert selector >= distance
